"""Result-cache keying and durability."""

import json

from repro.pipeline.cache import ResultCache, file_digest, trace_digest
from repro.tcp.catalog import catalog_version

from tests.conftest import cached_transfer


class TestDigests:
    def test_trace_digest_stable(self):
        trace = cached_transfer("reno", data_size=10240).sender_trace
        assert trace_digest(trace) == trace_digest(trace)

    def test_trace_digest_distinguishes_traces(self):
        transfer = cached_transfer("reno", data_size=10240)
        assert trace_digest(transfer.sender_trace) \
            != trace_digest(transfer.receiver_trace)

    def test_file_digest_tracks_content(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"hello")
        first = file_digest(path)
        path.write_bytes(b"hello, world")
        assert file_digest(path) != first


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc", {"trace": "x.pcap", "records": 3})
        assert cache.get("abc") == {"trace": "x.pcap", "records": 3}

    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("nope") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc", {"ok": True})
        entry = next((tmp_path / "cache").glob("*.json"))
        entry.write_text("{not json")
        assert cache.get("abc") is None

    def test_key_embeds_catalog_version(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.catalog_version == catalog_version()
        # Same content digest under a different catalog keys elsewhere.
        cache.put("abc", {"ok": True})
        cache.catalog_version = "0" * 16
        assert cache.get("abc") is None

    def test_entries_are_plain_json_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc", {"b": 2, "a": 1})
        entry = next((tmp_path / "cache").glob("*.json"))
        assert json.loads(entry.read_text()) == {"a": 1, "b": 2}
        assert len(cache) == 1

    def test_failed_put_leaves_no_scratch_file(self, tmp_path):
        import pytest
        cache = ResultCache(tmp_path / "cache")
        cache.put("abc", {"ok": True})
        before = sorted(p.name for p in (tmp_path / "cache").iterdir())
        with pytest.raises(TypeError):
            cache.put("def", {"payload": object()})  # not serializable
        # The aborted put left the cache directory exactly as it was:
        # no entry for "def" and, crucially, no stranded .tmp* scratch.
        assert sorted(p.name for p in (tmp_path / "cache").iterdir()) \
            == before
        assert cache.get("def") is None
