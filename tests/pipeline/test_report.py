"""JSONL output and the Table-1-style aggregate."""

import json

from repro.pipeline.report import aggregate_report, write_jsonl
from repro.pipeline.runner import BatchResult, TraceResult


def _sender(name, truth, best, category="close", clean=True):
    return TraceResult(name, {
        "trace": name, "implementation": truth, "records": 10,
        "vantage": "sender",
        "calibration": {"clean": clean, "drop_evidence": 0 if clean else 2,
                        "duplicates": 0, "resequencing": 0,
                        "time_travel": 0},
        "identification": {"best": best, "best_category": category,
                           "fits": []},
    })


def _receiver(name, truth, close):
    return TraceResult(name, {
        "trace": name, "implementation": truth, "records": 10,
        "vantage": "receiver",
        "calibration": {"clean": True, "drop_evidence": 0, "duplicates": 0,
                        "resequencing": 0, "time_travel": 0},
        "receiver_identification": {
            "close": close,
            "fits": [{"implementation": label, "category": "close",
                      "score": 0.0, "inconsistencies": []}
                     for label in close]},
    })


def _batch(results):
    return BatchResult(results=results, jobs=1, wall_time=0.5,
                       cache_hits=0, cache_misses=len(results))


class TestWriteJsonl:
    def test_one_sorted_object_per_line(self, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl([_sender("b.pcap", "reno", "reno"),
                     _sender("a.pcap", "tahoe", "tahoe")], path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert list(parsed) == sorted(parsed)


class TestAggregate:
    def test_confusion_and_accuracy(self):
        report = aggregate_report(_batch([
            _sender("reno-0000-sender.pcap", "reno", "reno"),
            _sender("reno-0001-sender.pcap", "reno", "bsdi-1.1"),
            _sender("tahoe-0000-sender.pcap", "tahoe", "tahoe"),
        ]))
        assert "-> bsdi-1.1×1, reno×1" in report
        assert "best-fit accuracy: 2/3 (66.7%)" in report

    def test_receiver_close_set_containment(self):
        report = aggregate_report(_batch([
            _receiver("reno-0000-receiver.pcap", "reno",
                      ["reno", "tahoe"]),
            _receiver("linux-1.0-0000-receiver.pcap", "linux-1.0",
                      ["trumpet-2.0b"]),
        ]))
        assert "receiver close-set contains truth: 1/2" in report

    def test_error_detection_counts(self):
        report = aggregate_report(_batch([
            _sender("reno-0000-sender.pcap", "reno", "reno", clean=False),
            _sender("reno-0001-sender.pcap", "reno", "reno"),
        ]))
        assert "measurement errors detected: 1 trace(s)" in report
        assert "drop_evidence: 2 finding(s)" in report

    def test_throughput_and_cache_lines(self):
        report = aggregate_report(_batch(
            [_sender("reno-0000-sender.pcap", "reno", "reno")]))
        assert "cache: 0 hit(s), 1 miss(es)" in report
        assert "traces/sec" in report
