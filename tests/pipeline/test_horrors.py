"""The corpus of horrors: everything a wild corpus can throw at the
pipeline, thrown at once.

The paper's headline claim is statistical survival — tcpanaly crossed
~40,000 wild packet-filter traces without one pathological trace
sinking the run.  These tests pin the reproduction to the same
contract: whatever is in the corpus (truncated pcaps, random bytes,
zero-length files, unreadable paths, injected hangs, crashes, and
corruption), ``run_batch`` completes, accounts for every item exactly
once, and keeps healthy-trace payloads byte-identical to a fault-free
run.
"""

import os
import shutil

import pytest

from repro.harness.corpus import write_corpus
from repro.harness.faults import FaultPlan, FaultSpec
from repro.pipeline import (
    BatchJournal,
    corpus_items,
    run_batch,
    write_jsonl,
)

IMPLEMENTATIONS = ["reno", "linux-1.0", "tahoe", "solaris-2.4"]


@pytest.fixture(scope="module")
def healthy_dir(tmp_path_factory):
    """A ≥40-trace healthy corpus (the chaos gate's substrate)."""
    outdir = tmp_path_factory.mktemp("horrors-healthy")
    write_corpus(outdir, implementations=IMPLEMENTATIONS,
                 traces_per_implementation=5, data_size=10240)
    assert len(list(outdir.glob("*.pcap"))) >= 40
    return outdir


@pytest.fixture(scope="module")
def clean_lines(healthy_dir, tmp_path_factory):
    """Fault-free JSONL lines, keyed by trace name."""
    import json
    path = tmp_path_factory.mktemp("horrors-clean") / "clean.jsonl"
    batch = run_batch(corpus_items(healthy_dir), jobs=2, timeout=120.0)
    write_jsonl(batch.results, path)
    return {json.loads(line)["trace"]: line
            for line in path.read_text().splitlines()}


class TestCorpusOfHorrors:
    @pytest.fixture()
    def horrors_dir(self, healthy_dir, tmp_path):
        horrors = tmp_path / "horrors"
        shutil.copytree(healthy_dir, horrors)
        # Random bytes where a pcap should be.
        (horrors / "random.pcap").write_bytes(os.urandom(512))
        # A zero-length file.
        (horrors / "zero.pcap").write_bytes(b"")
        # A valid header whose record stream is cut mid-header.
        donor = sorted(horrors.glob("reno-*.pcap"))[0].read_bytes()
        (horrors / "truncated.pcap").write_bytes(donor[:24 + 7])
        # An unreadable "file" (a directory opens with EISDIR even for
        # root, unlike a chmod-000 file).
        (horrors / "unreadable.pcap").mkdir()
        return horrors

    def test_every_horror_quarantined_every_item_counted_once(
            self, horrors_dir, clean_lines):
        batch = run_batch(corpus_items(horrors_dir), jobs=4, timeout=120.0)
        names = [r.name for r in batch.results]
        assert len(names) == len(set(names))
        assert len(names) == len(clean_lines) + 4
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name["random.pcap"]["error_kind"] == "decode"
        assert by_name["zero.pcap"]["error_kind"] == "decode"
        assert by_name["unreadable.pcap"]["error_kind"] == "io"
        # The truncated trailer survives decode (partial-record
        # tolerance) or quarantines cleanly — either way it is counted
        # and classified, never fatal.
        truncated = by_name["truncated.pcap"]
        assert "error_kind" not in truncated \
            or truncated["error_kind"] in ("decode", "model")

    def test_healthy_payloads_unaffected_by_horrors(self, horrors_dir,
                                                    clean_lines, tmp_path):
        from repro.pipeline import result_line
        batch = run_batch(corpus_items(horrors_dir), jobs=4, timeout=120.0)
        healthy = [r for r in batch.results if r.name in clean_lines]
        assert len(healthy) == len(clean_lines)
        for result in healthy:
            assert result_line(result) == clean_lines[result.name]

    def test_unreadable_permissions_quarantined_as_io(self, healthy_dir,
                                                      tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores file permission bits")
        corpus = tmp_path / "perm"
        shutil.copytree(healthy_dir, corpus)
        victim = sorted(corpus.glob("*.pcap"))[0]
        victim.chmod(0)
        try:
            batch = run_batch(corpus_items(corpus), jobs=1)
        finally:
            victim.chmod(0o644)
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name[victim.name]["error_kind"] == "io"
        assert sum("error" in p for p in by_name.values()) == 1


class TestChaosEquivalenceGate:
    """The acceptance gate: 1 killed worker, 1 hang past --timeout,
    2 corrupted inputs, on a ≥40-trace corpus."""

    @pytest.fixture(scope="class")
    def chaos_batch(self, healthy_dir):
        items = corpus_items(healthy_dir)
        assert len(items) >= 40
        victims = {
            "crash": items[5].name,
            "timeout": items[15].name,
            "decode-a": items[25].name,
            "decode-b": items[35].name,
        }
        plan = FaultPlan(specs=(
            FaultSpec(match=victims["crash"], kind="kill"),
            FaultSpec(match=victims["timeout"], kind="hang",
                      hang_seconds=300.0),
            FaultSpec(match=victims["decode-a"], kind="corrupt"),
            FaultSpec(match=victims["decode-b"], kind="corrupt",
                      corrupt_bytes=b"\x00\x00\x00\x00"),
        ))
        # 5 s is far above any healthy item (~0.2 s analysis + worker
        # start-up) even on a loaded runner, yet far below the 300 s
        # injected hang, so exactly the victims quarantine.
        batch = run_batch(items, jobs=4, timeout=5.0, retries=1,
                          fault_plan=plan)
        return victims, batch

    def test_run_completes_with_every_item_counted(self, chaos_batch,
                                                   clean_lines):
        _victims, batch = chaos_batch
        names = [r.name for r in batch.results]
        assert sorted(names) == sorted(clean_lines)

    def test_exactly_the_injected_failures_quarantined(self, chaos_batch):
        victims, batch = chaos_batch
        by_name = {r.name: r.payload for r in batch.results}
        quarantined = {name: p["error_kind"]
                       for name, p in by_name.items() if "error" in p}
        assert quarantined == {
            victims["crash"]: "crash",
            victims["timeout"]: "timeout",
            victims["decode-a"]: "decode",
            victims["decode-b"]: "decode",
        }

    def test_healthy_lines_byte_identical_to_fault_free_run(
            self, chaos_batch, clean_lines):
        from repro.pipeline import result_line
        victims, batch = chaos_batch
        victim_names = set(victims.values())
        for result in batch.results:
            if result.name in victim_names:
                continue
            assert result_line(result) == clean_lines[result.name]

    def test_interrupted_then_resumed_run_is_byte_identical(
            self, healthy_dir, clean_lines, tmp_path):
        items = corpus_items(healthy_dir)
        cut = len(items) // 3
        journal = BatchJournal(tmp_path / "j.jsonl")
        run_batch(items[:cut], jobs=2, timeout=120.0, journal=journal)
        journal.close()
        resumed_journal = BatchJournal(tmp_path / "j.jsonl", resume=True)
        resumed = run_batch(items, jobs=2, timeout=120.0,
                            journal=resumed_journal)
        resumed_journal.close()
        assert resumed.resumed == cut
        assert resumed.cache_misses == len(items) - cut
        out = tmp_path / "resumed.jsonl"
        write_jsonl(resumed.results, out)
        expected = "".join(clean_lines[name] + "\n"
                           for name in sorted(clean_lines))
        assert out.read_text() == expected
