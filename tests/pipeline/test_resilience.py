"""Supervised pool: crash recovery, timeouts, classified quarantine."""

import os
from dataclasses import dataclass

import pytest

from repro.core.errors import AnalysisError, classify_exception
from repro.harness.corpus import write_corpus
from repro.harness.faults import FaultPlan, FaultSpec
from repro.pipeline import PoolSession, SupervisedPool, corpus_items, \
    run_batch
from repro.pipeline.resilience import error_payload


@dataclass(frozen=True)
class Job:
    """Minimal batch-item protocol for direct PoolSession tests."""

    name: str
    implementation: str | None = None


def _echo_worker(index, item, attempt):
    return [{"item": item.name, "attempt": attempt, "pid": os.getpid()}]


def _crash_once_worker(index, item, attempt):
    if item.name == "bomb" and attempt == 0:
        os._exit(9)
    return [{"item": item.name, "attempt": attempt}]


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("resilience-corpus")
    write_corpus(outdir, implementations=["reno", "linux-1.0"],
                 traces_per_implementation=2, data_size=10240)
    return outdir


@pytest.fixture(scope="module")
def clean_payloads(corpus_dir):
    batch = run_batch(corpus_items(corpus_dir), jobs=1)
    return {r.name: r.payload for r in batch.results}


class TestTaxonomy:
    def test_kinds_are_closed(self):
        with pytest.raises(ValueError):
            AnalysisError("meteor-strike", "boom")

    def test_value_error_classifies_as_decode(self):
        assert classify_exception(ValueError("bad magic")).kind == "decode"

    def test_struct_error_classifies_as_decode(self):
        import struct
        try:
            struct.unpack(">I", b"\x00")
        except struct.error as error:
            assert classify_exception(error).kind == "decode"

    def test_os_error_classifies_as_io(self):
        assert classify_exception(FileNotFoundError("gone")).kind == "io"

    def test_model_defects_classify_as_model(self):
        for error in (KeyError("x"), RecursionError("deep"),
                      ZeroDivisionError("div")):
            assert classify_exception(error).kind == "model"

    def test_analysis_error_passes_through(self):
        error = AnalysisError("timeout", "too slow")
        assert classify_exception(error) is error

    def test_stage_annotation_survives_classification(self):
        error = KeyError("x")
        error.analysis_stage = "identification"
        fields = classify_exception(error).to_fields()
        assert fields["error_stage"] == "identification"

    def test_error_payload_shape(self, corpus_dir):
        item = corpus_items(corpus_dir)[0]
        payload = error_payload(item, AnalysisError("crash", "died"),
                                attempts=3)
        assert payload["trace"] == item.name
        assert payload["error_kind"] == "crash"
        assert payload["attempts"] == 3


class TestSupervisedPoolHealthy:
    def test_pool_matches_sequential(self, corpus_dir, clean_payloads):
        batch = run_batch(corpus_items(corpus_dir), jobs=4, timeout=60.0)
        assert {r.name: r.payload for r in batch.results} == clean_payloads

    def test_single_worker_pool(self, corpus_dir, clean_payloads):
        # jobs=1 with a timeout still runs supervised (in a subprocess).
        batch = run_batch(corpus_items(corpus_dir), jobs=1, timeout=60.0)
        assert {r.name: r.payload for r in batch.results} == clean_payloads

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SupervisedPool(0, lambda *a: [])
        with pytest.raises(ValueError):
            SupervisedPool(1, lambda *a: [], retries=-1)

    def test_empty_task_list(self):
        pool = SupervisedPool(2, lambda *a: [])
        assert list(pool.run([])) == []


class TestCrashRecovery:
    def test_killed_worker_is_requeued_and_retried(self, corpus_dir,
                                                   clean_payloads):
        victim = sorted(clean_payloads)[0]
        plan = FaultPlan(specs=(
            FaultSpec(match=victim, kind="kill", on_attempts=(0,)),))
        batch = run_batch(corpus_items(corpus_dir), jobs=2, timeout=60.0,
                          retries=2, fault_plan=plan)
        # The retry succeeded: every payload matches the clean run.
        assert {r.name: r.payload for r in batch.results} == clean_payloads

    def test_persistent_crasher_is_quarantined(self, corpus_dir,
                                               clean_payloads):
        victim = sorted(clean_payloads)[1]
        plan = FaultPlan(specs=(FaultSpec(match=victim, kind="kill"),))
        batch = run_batch(corpus_items(corpus_dir), jobs=2, timeout=60.0,
                          retries=1, fault_plan=plan)
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name[victim]["error_kind"] == "crash"
        assert by_name[victim]["attempts"] == 2
        assert "exit code 9" in by_name[victim]["error"]
        healthy = {name: p for name, p in by_name.items() if name != victim}
        assert healthy == {name: p for name, p in clean_payloads.items()
                           if name != victim}

    def test_every_item_resolved_exactly_once(self, corpus_dir):
        items = corpus_items(corpus_dir)
        plan = FaultPlan(specs=(
            FaultSpec(match=items[0].name, kind="kill"),
            FaultSpec(match=items[2].name, kind="kill", on_attempts=(0, 1)),
        ))
        batch = run_batch(items, jobs=3, timeout=60.0, retries=2,
                          fault_plan=plan)
        names = [r.name for r in batch.results]
        assert sorted(names) == sorted(i.name for i in items)
        assert len(names) == len(set(names))


class TestTimeouts:
    def test_hung_trace_is_killed_and_quarantined(self, corpus_dir,
                                                  clean_payloads):
        victim = sorted(clean_payloads)[2]
        plan = FaultPlan(specs=(
            FaultSpec(match=victim, kind="hang", hang_seconds=120.0),))
        batch = run_batch(corpus_items(corpus_dir), jobs=2, timeout=1.0,
                          fault_plan=plan)
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name[victim]["error_kind"] == "timeout"
        assert "1s wall-clock" in by_name[victim]["error"]
        healthy = {name: p for name, p in by_name.items() if name != victim}
        assert healthy == {name: p for name, p in clean_payloads.items()
                           if name != victim}

    def test_timeout_quarantine_is_not_cached(self, corpus_dir, tmp_path):
        from repro.pipeline import ResultCache
        victim = sorted(p.name for p in corpus_items(corpus_dir))[0]
        plan = FaultPlan(specs=(
            FaultSpec(match=victim, kind="hang", hang_seconds=120.0),))
        cache = ResultCache(tmp_path / "cache")
        run_batch(corpus_items(corpus_dir), jobs=2, timeout=1.0,
                  fault_plan=plan, cache=cache)
        # Fault-free warm run: the victim must be re-analyzed (a miss),
        # everything else served from cache.
        warm = run_batch(corpus_items(corpus_dir), jobs=1, cache=cache)
        assert warm.cache_misses == 1
        by_name = {r.name: r.payload for r in warm.results}
        assert "error" not in by_name[victim]


class TestPoolSession:
    """The incremental submit/poll substrate under SupervisedPool and
    the serve scheduler."""

    def test_submit_poll_resolves_every_index_once(self):
        session = PoolSession(2, _echo_worker)
        for i in range(6):
            session.submit(i, Job(name=f"job-{i}"))
        seen = {}
        while session.outstanding > 0:
            for index, payloads, elapsed in session.poll():
                assert index not in seen
                assert elapsed >= 0.0
                seen[index] = payloads[0]["item"]
        session.close()
        assert seen == {i: f"job-{i}" for i in range(6)}

    def test_incremental_submission_between_polls(self):
        session = PoolSession(1, _echo_worker)
        session.submit(0, Job(name="first"))
        first = list(session.drain())
        session.submit(1, Job(name="second"))   # session still open
        second = list(session.drain())
        session.close()
        assert [p[0]["item"] for _i, p, _e in first] == ["first"]
        assert [p[0]["item"] for _i, p, _e in second] == ["second"]

    def test_same_shard_pins_to_one_worker(self):
        session = PoolSession(2, _echo_worker)
        for i in range(6):
            session.submit(i, Job(name=f"job-{i}"), shard=7)
        pids = set()
        while session.outstanding > 0:
            for _index, payloads, _elapsed in session.poll():
                pids.add(payloads[0]["pid"])
        session.close()
        assert len(pids) == 1

    def test_dead_worker_is_respawned_and_counted(self):
        session = PoolSession(1, _crash_once_worker, retries=2)
        session.submit(0, Job(name="bomb"))
        session.submit(1, Job(name="after"))
        results = {}
        while session.outstanding > 0:
            for index, payloads, _elapsed in session.poll():
                results[index] = payloads[0]
        session.close()
        assert session.worker_restarts >= 1
        assert results[0] == {"item": "bomb", "attempt": 1}
        assert results[1]["item"] == "after"

    def test_queue_accounting(self):
        session = PoolSession(1, _echo_worker)
        for i in range(4):
            session.submit(i, Job(name=f"job-{i}"))
        assert session.outstanding == 4
        assert session.inflight + session.queue_depth == 4
        while session.outstanding > 0:
            session.poll()
        assert session.queue_depth == 0
        assert session.inflight == 0
        session.close()

    def test_closed_session_rejects_submissions(self):
        session = PoolSession(1, _echo_worker)
        session.close()
        with pytest.raises(ValueError, match="closed"):
            session.submit(0, Job(name="late"))


class TestInjectedExceptions:
    @pytest.mark.parametrize("exception,kind", [
        ("KeyError", "model"),
        ("RecursionError", "model"),
        ("struct.error", "decode"),
        ("OSError", "io"),
    ])
    def test_worker_exceptions_classify_without_killing_the_pool(
            self, corpus_dir, exception, kind):
        items = corpus_items(corpus_dir)
        plan = FaultPlan(specs=(
            FaultSpec(match=items[0].name, kind="raise",
                      exception=exception),))
        batch = run_batch(items, jobs=2, timeout=60.0, fault_plan=plan)
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name[items[0].name]["error_kind"] == kind
        assert sum("error" in p for p in by_name.values()) == 1

    def test_in_process_path_classifies_too(self, corpus_dir):
        items = corpus_items(corpus_dir)
        plan = FaultPlan(specs=(
            FaultSpec(match=items[1].name, kind="raise",
                      exception="RecursionError"),))
        batch = run_batch(items, jobs=1, fault_plan=plan)
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name[items[1].name]["error_kind"] == "model"
