"""Batch runner: determinism, parallelism, caching, provenance."""

import pytest

from repro.harness.corpus import write_corpus
from repro.pipeline import (
    ResultCache,
    corpus_items,
    memory_items,
    run_batch,
    true_implementation,
    write_jsonl,
)

IMPLEMENTATIONS = ["reno", "linux-1.0"]


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("corpus")
    write_corpus(outdir, implementations=IMPLEMENTATIONS,
                 traces_per_implementation=1, data_size=10240)
    return outdir


class TestTrueImplementation:
    def test_dashed_label_parsed_from_the_right(self):
        assert true_implementation("solaris-2.4-0003-sender.pcap") \
            == "solaris-2.4"

    def test_receiver_side(self):
        assert true_implementation("linux-1.0-0000-receiver.pcap") \
            == "linux-1.0"

    def test_unknown_label_is_none(self):
        assert true_implementation("mystery-os-0000-sender.pcap") is None

    def test_non_corpus_name_is_none(self):
        assert true_implementation("capture.pcap") is None


class TestCorpusItems:
    def test_items_sorted_with_provenance(self, corpus_dir):
        items = corpus_items(corpus_dir)
        assert len(items) == 2 * len(IMPLEMENTATIONS)
        assert [i.name for i in items] == sorted(i.name for i in items)
        assert {i.implementation for i in items} == set(IMPLEMENTATIONS)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            corpus_items(tmp_path)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            corpus_items(tmp_path / "nope")


class TestRunBatch:
    def test_sequential_results(self, corpus_dir):
        batch = run_batch(corpus_items(corpus_dir), jobs=1)
        assert len(batch.results) == 2 * len(IMPLEMENTATIONS)
        for result in batch.results:
            assert result.payload["trace"] == result.name
            assert result.payload["records"] > 0
            assert "calibration" in result.payload
            side = ("identification" if result.name.endswith("-sender.pcap")
                    else "receiver_identification")
            assert side in result.payload

    def test_parallel_matches_sequential_byte_for_byte(self, corpus_dir,
                                                       tmp_path):
        items = corpus_items(corpus_dir)
        sequential = run_batch(items, jobs=1)
        parallel = run_batch(items, jobs=2)
        write_jsonl(sequential.results, tmp_path / "seq.jsonl")
        write_jsonl(parallel.results, tmp_path / "par.jsonl")
        assert (tmp_path / "seq.jsonl").read_bytes() \
            == (tmp_path / "par.jsonl").read_bytes()

    def test_warm_cache_skips_all_analysis(self, corpus_dir, tmp_path):
        items = corpus_items(corpus_dir)
        cache = ResultCache(tmp_path / "cache")
        cold = run_batch(items, jobs=1, cache=cache)
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(items)
        warm = run_batch(items, jobs=1, cache=cache)
        assert warm.cache_hits == len(items)
        assert warm.cache_misses == 0
        assert [r.payload for r in warm.results] \
            == [r.payload for r in cold.results]

    def test_changed_trace_invalidates_only_itself(self, corpus_dir,
                                                   tmp_path):
        items = corpus_items(corpus_dir)
        cache = ResultCache(tmp_path / "cache")
        run_batch(items, jobs=1, cache=cache)
        victim = items[0].path
        data = victim.read_bytes()
        victim.write_bytes(data + b"\x00" * 4)  # truncated trailing packet
        try:
            rerun = run_batch(corpus_items(corpus_dir), jobs=1, cache=cache)
        finally:
            victim.write_bytes(data)
        assert rerun.cache_misses == 1
        assert rerun.cache_hits == len(items) - 1

    def test_memory_items_match_file_items(self, tmp_path):
        written = write_corpus(tmp_path / "c", implementations=["reno"],
                               traces_per_implementation=1, data_size=10240)
        from_memory = run_batch(memory_items(written), jobs=1)
        from_files = run_batch(corpus_items(tmp_path / "c"), jobs=1)
        names = [r.name for r in from_memory.results]
        assert names == [r.name for r in from_files.results]
        for memory, file in zip(from_memory.results, from_files.results):
            assert memory.payload["records"] == file.payload["records"]

    def test_rejects_zero_jobs(self, corpus_dir):
        with pytest.raises(ValueError):
            run_batch(corpus_items(corpus_dir), jobs=0)

    def test_damaged_trace_yields_error_payload(self, corpus_dir,
                                                tmp_path):
        import shutil
        mixed = tmp_path / "mixed"
        shutil.copytree(corpus_dir, mixed)
        (mixed / "bad.pcap").write_bytes(b"garbage")
        batch = run_batch(corpus_items(mixed), jobs=1)
        by_name = {r.name: r.payload for r in batch.results}
        assert "error" in by_name["bad.pcap"]
        assert "identification" not in by_name["bad.pcap"]
        healthy = len(batch.results) - 1
        assert sum("error" not in p for p in by_name.values()) == healthy


class TestStreamMode:
    def test_single_connection_captures_keep_item_names(self, corpus_dir):
        items = corpus_items(corpus_dir)
        batch = run_batch(items, jobs=1, stream=True)
        assert [r.name for r in batch.results] == [i.name for i in items]
        for result in batch.results:
            assert result.payload["flow"]["index"] == 0
            assert result.payload["ingest"]["flows_opened"] == 1

    def test_multi_connection_capture_fans_out(self, tmp_path):
        from repro.harness.corpus import generate_interleaved_capture
        from repro.trace.pcap import write_pcap
        capture = generate_interleaved_capture(
            implementations=["reno"], connections=3,
            distinct_transfers=1, data_size=10240, scenarios=("wan",))
        outdir = tmp_path / "caps"
        outdir.mkdir()
        write_pcap(capture.trace, outdir / "multi.pcap")
        batch = run_batch(corpus_items(outdir), jobs=1, stream=True)
        assert [r.name for r in batch.results] == [
            "multi.pcap#flow-0000", "multi.pcap#flow-0001",
            "multi.pcap#flow-0002"]
        for result in batch.results:
            assert result.payload["ingest"]["flows_opened"] == 3

    def test_stream_parallel_matches_sequential(self, corpus_dir,
                                                tmp_path):
        items = corpus_items(corpus_dir)
        sequential = run_batch(items, jobs=1, stream=True)
        parallel = run_batch(items, jobs=2, stream=True)
        write_jsonl(sequential.results, tmp_path / "seq.jsonl")
        write_jsonl(parallel.results, tmp_path / "par.jsonl")
        assert (tmp_path / "seq.jsonl").read_bytes() \
            == (tmp_path / "par.jsonl").read_bytes()

    def test_stream_cache_round_trips_fanout(self, tmp_path):
        from repro.harness.corpus import generate_interleaved_capture
        from repro.trace.pcap import write_pcap
        capture = generate_interleaved_capture(
            implementations=["reno"], connections=2,
            distinct_transfers=1, data_size=10240, scenarios=("wan",))
        outdir = tmp_path / "caps"
        outdir.mkdir()
        write_pcap(capture.trace, outdir / "multi.pcap")
        cache = ResultCache(tmp_path / "cache")
        cold = run_batch(corpus_items(outdir), jobs=1, stream=True,
                         cache=cache)
        warm = run_batch(corpus_items(outdir), jobs=1, stream=True,
                         cache=cache)
        assert warm.cache_misses == 0
        assert [r.payload for r in warm.results] \
            == [r.payload for r in cold.results]

    def test_stream_memory_items_demux_in_memory(self, tmp_path):
        written = write_corpus(tmp_path / "c", implementations=["reno"],
                               traces_per_implementation=1,
                               data_size=10240)
        batch = run_batch(memory_items(written), jobs=1, stream=True)
        assert len(batch.results) == 2
        for result in batch.results:
            assert result.payload["flow"]["saw_syn"]

    def test_damaged_capture_yields_error_payload(self, tmp_path):
        outdir = tmp_path / "caps"
        outdir.mkdir()
        (outdir / "bad.pcap").write_bytes(b"garbage")
        batch = run_batch(corpus_items(outdir), jobs=1, stream=True)
        payload, = [r.payload for r in batch.results]
        assert "error" in payload


class TestErrorClassification:
    @pytest.mark.parametrize("exception", [KeyError("afield"),
                                           RecursionError("too deep")])
    def test_analysis_defects_surface_as_model_errors(self, corpus_dir,
                                                      monkeypatch,
                                                      exception):
        def explode(*args, **kwargs):
            raise exception
        monkeypatch.setattr("repro.pipeline.runner.analyze_trace", explode)
        batch = run_batch(corpus_items(corpus_dir), jobs=1)
        for result in batch.results:
            assert result.payload["error_kind"] == "model"
            assert type(exception).__name__ in result.payload["error"]

    def test_unreadable_corpus_file_quarantined_as_io(self, corpus_dir,
                                                      tmp_path):
        import shutil
        mixed = tmp_path / "mixed"
        shutil.copytree(corpus_dir, mixed)
        # A directory with a .pcap name: content_digest() hits EISDIR
        # for every user, root included.
        (mixed / "locked.pcap").mkdir()
        batch = run_batch(corpus_items(mixed), jobs=1)
        by_name = {r.name: r.payload for r in batch.results}
        assert by_name["locked.pcap"]["error_kind"] == "io"
        # The rest of the batch still ran.
        assert sum("error" not in p for p in by_name.values()) \
            == len(batch.results) - 1
