"""Spool watching: each drop-in capture is reported exactly once."""

from repro.serve import SpoolWatcher


class TestSpoolWatcher:
    def test_reports_each_file_exactly_once(self, tmp_path):
        watcher = SpoolWatcher(tmp_path)
        (tmp_path / "a.pcap").write_bytes(b"")
        assert watcher.scan() == [tmp_path / "a.pcap"]
        assert watcher.scan() == []
        (tmp_path / "b.pcap").write_bytes(b"")
        assert watcher.scan() == [tmp_path / "b.pcap"]

    def test_pattern_filters_non_captures(self, tmp_path):
        watcher = SpoolWatcher(tmp_path)
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "c.pcap").write_bytes(b"")
        assert watcher.scan() == [tmp_path / "c.pcap"]

    def test_missing_directory_is_not_fatal(self, tmp_path):
        watcher = SpoolWatcher(tmp_path / "not-yet")
        assert watcher.scan() == []
        # The directory appearing later starts reporting normally.
        (tmp_path / "not-yet").mkdir()
        (tmp_path / "not-yet" / "d.pcap").write_bytes(b"")
        assert watcher.scan() == [tmp_path / "not-yet" / "d.pcap"]

    def test_batch_of_files_arrives_sorted(self, tmp_path):
        watcher = SpoolWatcher(tmp_path)
        for name in ("z.pcap", "a.pcap", "m.pcap"):
            (tmp_path / name).write_bytes(b"")
        assert [p.name for p in watcher.scan()] \
            == ["a.pcap", "m.pcap", "z.pcap"]

    def test_departed_paths_are_forgotten(self, tmp_path):
        # Regression: _seen once grew without bound — a spool that
        # cycles files forever leaked an entry per file.
        watcher = SpoolWatcher(tmp_path)
        path = tmp_path / "a.pcap"
        path.write_bytes(b"x")
        watcher.scan()
        path.unlink()
        watcher.scan()
        assert watcher._seen == {}

    def test_recreated_file_is_reported_again(self, tmp_path):
        watcher = SpoolWatcher(tmp_path)
        path = tmp_path / "a.pcap"
        path.write_bytes(b"first incarnation")
        assert watcher.scan() == [path]
        path.unlink()
        watcher.scan()
        path.write_bytes(b"second incarnation")
        assert watcher.scan() == [path]   # new inode: a new capture

    def test_truncated_file_is_reported_again(self, tmp_path):
        watcher = SpoolWatcher(tmp_path)
        path = tmp_path / "a.pcap"
        path.write_bytes(b"a long first incarnation of this capture")
        assert watcher.scan() == [path]
        path.write_bytes(b"short")        # copytruncate rotation
        assert watcher.scan() == [path]

    def test_growth_is_not_re_reported(self, tmp_path):
        watcher = SpoolWatcher(tmp_path)
        path = tmp_path / "a.pcap"
        path.write_bytes(b"start")
        watcher.scan()
        with open(path, "ab") as handle:
            handle.write(b" and more")
        assert watcher.scan() == []
