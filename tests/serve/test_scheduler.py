"""Flow dispatch: sharding, journal-first durability, replay on restart."""

import pytest

from repro.harness.faults import FaultPlan, FaultSpec
from repro.pipeline.journal import BatchJournal
from repro.serve import (
    BreakerBoard,
    FlowScheduler,
    FlowWorkItem,
    analyze_flow_item,
)
from repro.stream.flowtable import demux_records

from tests.conftest import cached_transfer


@pytest.fixture(scope="module")
def reno_flow():
    records = cached_transfer("reno").sender_trace.records
    flows = list(demux_records(records))
    assert len(flows) == 1
    return flows[0]


class TestFlowWorkItem:
    def test_name_carries_source_and_flow_index(self, reno_flow):
        item = FlowWorkItem("eth0.pcap", reno_flow)
        assert item.name == "eth0.pcap#flow-0000"

    def test_shard_is_stable_and_source_scoped(self, reno_flow):
        a = FlowWorkItem("one.pcap", reno_flow)
        b = FlowWorkItem("one.pcap", reno_flow)
        c = FlowWorkItem("two.pcap", reno_flow)
        assert a.shard() == b.shard()     # pure function, no hash salt
        assert a.shard() != c.shard()
        assert isinstance(a.shard(), int)

    def test_digest_tracks_the_flow_bytes(self, reno_flow):
        item = FlowWorkItem("one.pcap", reno_flow)
        assert item.content_digest() == item.content_digest()


class TestAnalyzeFlowItem:
    def test_payload_matches_batch_shape_minus_ingest(self, reno_flow):
        item = FlowWorkItem("cap.pcap", reno_flow, implementation="reno")
        payloads = analyze_flow_item(0, item, 0)
        assert len(payloads) == 1
        payload = payloads[0]
        assert payload["trace"] == "cap.pcap#flow-0000"
        assert payload["implementation"] == "reno"
        assert "identification" in payload
        assert "ingest" not in payload    # the capture is still growing

    def test_injected_failure_comes_back_classified(self, reno_flow):
        item = FlowWorkItem("cap.pcap", reno_flow)
        plan = FaultPlan((FaultSpec(match=item.name, kind="raise",
                                    exception="OSError"),))
        payloads = analyze_flow_item(0, item, 0, fault_plan=plan)
        assert payloads[0]["error_kind"] == "io"


class TestFlowScheduler:
    def test_round_trip_journals_then_replays(self, reno_flow, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = BatchJournal(journal_path, stream=True, resume=True)
        scheduler = FlowScheduler(1, journal=journal)
        item = FlowWorkItem("cap.pcap", reno_flow, implementation="reno")
        assert scheduler.submit(item) == []
        results = scheduler.drain()
        scheduler.close()
        journal.close()
        assert [name for name, _ in results] == ["cap.pcap#flow-0000"]

        # A restarted scheduler replays the journaled flow instantly.
        journal = BatchJournal(journal_path, stream=True, resume=True)
        restarted = FlowScheduler(1, journal=journal)
        replay = restarted.submit(
            FlowWorkItem("cap.pcap", reno_flow, implementation="reno"))
        restarted.close()
        journal.close()
        assert replay == results
        assert restarted.replayed == 1

    def test_transient_failures_are_never_journaled(self, reno_flow,
                                                    tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        item = FlowWorkItem("cap.pcap", reno_flow)
        plan = FaultPlan((FaultSpec(match=item.name, kind="raise",
                                    exception="OSError"),))
        journal = BatchJournal(journal_path, stream=True, resume=True)
        scheduler = FlowScheduler(1, journal=journal, fault_plan=plan)
        scheduler.submit(item)
        results = scheduler.drain()
        scheduler.close()
        journal.close()
        assert results[0][1][0]["error_kind"] == "io"

        # Restart: the io quarantine was transient, so no replay —
        # the flow is analyzed again (and succeeds without the fault).
        journal = BatchJournal(journal_path, stream=True, resume=True)
        retried = FlowScheduler(1, journal=journal)
        assert retried.submit(FlowWorkItem("cap.pcap", reno_flow)) == []
        fresh = retried.drain()
        retried.close()
        journal.close()
        assert retried.replayed == 0
        assert "error_kind" not in fresh[0][1][0]

    def test_outstanding_and_queue_accounting(self, reno_flow, tmp_path):
        scheduler = FlowScheduler(1)
        for source in ("a.pcap", "b.pcap", "c.pcap"):
            scheduler.submit(FlowWorkItem(source, reno_flow))
        assert scheduler.outstanding == 3
        assert scheduler.queue_depth + scheduler.inflight <= 3
        results = scheduler.drain()
        scheduler.close()
        assert scheduler.outstanding == 0
        assert sorted(name for name, _ in results) == \
            ["a.pcap#flow-0000", "b.pcap#flow-0000", "c.pcap#flow-0000"]


class TestSchedulerGovernance:
    def test_results_are_accounted_to_source_breakers(self, reno_flow):
        board = BreakerBoard(failures=1, max_trips=1)
        plan = FaultPlan((FaultSpec(match="bad.pcap#*", kind="kill"),))
        scheduler = FlowScheduler(1, fault_plan=plan, retries=0,
                                  breakers=board)
        scheduler.submit(FlowWorkItem("bad.pcap", reno_flow))
        scheduler.submit(FlowWorkItem("good.pcap", reno_flow))
        scheduler.drain()
        scheduler.close()
        states = board.states()
        assert states["bad.pcap"] == "quarantined"
        assert states["good.pcap"] == "closed"

    def test_cancel_source_withdraws_only_queued_flows(self, reno_flow):
        scheduler = FlowScheduler(1)
        # Same shard per source+flow: all three of bad's items queue
        # behind each other; none may be in flight yet since we never
        # polled.  Good's item must survive the cancellation.
        for _ in range(3):
            scheduler.submit(FlowWorkItem("bad.pcap", reno_flow))
        scheduler.submit(FlowWorkItem("good.pcap", reno_flow))
        cancelled = scheduler.cancel_source("bad.pcap")
        assert scheduler.cancelled == len(cancelled)
        for name, payloads in cancelled:
            assert name.startswith("bad.pcap#")
            assert payloads[0]["error_kind"] == "cancelled"
        results = scheduler.drain()
        scheduler.close()
        names = [name for name, _ in results]
        assert "good.pcap#flow-0000" in names
        assert len(names) + len(cancelled) == 4

    def test_cancelled_is_transient_never_journaled(self, reno_flow,
                                                    tmp_path):
        journal = BatchJournal(tmp_path / "journal.jsonl", stream=True,
                               resume=True)
        # The in-flight item crashes (transient too); the queued one
        # is cancelled.  Either way nothing may reach the journal.
        plan = FaultPlan((FaultSpec(match="bad.pcap#*", kind="kill"),))
        scheduler = FlowScheduler(1, journal=journal, fault_plan=plan,
                                  retries=0)
        for _ in range(2):
            scheduler.submit(FlowWorkItem("bad.pcap", reno_flow))
        scheduler.cancel_source("bad.pcap")
        scheduler.drain()
        scheduler.close()
        journal.close()
        # Restart: every cancelled flow is re-analyzed from scratch.
        journal = BatchJournal(tmp_path / "journal.jsonl", stream=True,
                               resume=True)
        restarted = FlowScheduler(1, journal=journal)
        replay = restarted.submit(FlowWorkItem("bad.pcap", reno_flow))
        restarted.drain()
        restarted.close()
        journal.close()
        assert replay == []
        assert restarted.replayed == 0

    def test_journal_disk_failure_parks_then_flushes(self, reno_flow,
                                                     tmp_path, monkeypatch):
        journal = BatchJournal(tmp_path / "journal.jsonl", stream=True,
                               resume=True)
        scheduler = FlowScheduler(1, journal=journal)
        scheduler.submit(FlowWorkItem("cap.pcap", reno_flow))
        real_record = journal.record
        broken = {"on": True}

        def flaky_record(*args, **kwargs):
            if broken["on"]:
                raise OSError(28, "No space left on device")
            return real_record(*args, **kwargs)

        monkeypatch.setattr(journal, "record", flaky_record)
        results = scheduler.drain()
        assert len(results) == 1          # the result still flows on
        assert scheduler.journal_pending == 1
        assert scheduler.journal_errors == 1
        assert scheduler.flush_journal() == 0    # still failing
        broken["on"] = False
        assert scheduler.flush_journal() == 1
        assert scheduler.journal_pending == 0
        scheduler.close()
        journal.close()
        # The parked entry really landed: a restart replays it.
        journal = BatchJournal(tmp_path / "journal.jsonl", stream=True,
                               resume=True)
        restarted = FlowScheduler(1, journal=journal)
        replay = restarted.submit(FlowWorkItem("cap.pcap", reno_flow))
        restarted.close()
        journal.close()
        assert len(replay) == 1
