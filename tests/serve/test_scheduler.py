"""Flow dispatch: sharding, journal-first durability, replay on restart."""

import pytest

from repro.harness.faults import FaultPlan, FaultSpec
from repro.pipeline.journal import BatchJournal
from repro.serve import FlowScheduler, FlowWorkItem, analyze_flow_item
from repro.stream.flowtable import demux_records

from tests.conftest import cached_transfer


@pytest.fixture(scope="module")
def reno_flow():
    records = cached_transfer("reno").sender_trace.records
    flows = list(demux_records(records))
    assert len(flows) == 1
    return flows[0]


class TestFlowWorkItem:
    def test_name_carries_source_and_flow_index(self, reno_flow):
        item = FlowWorkItem("eth0.pcap", reno_flow)
        assert item.name == "eth0.pcap#flow-0000"

    def test_shard_is_stable_and_source_scoped(self, reno_flow):
        a = FlowWorkItem("one.pcap", reno_flow)
        b = FlowWorkItem("one.pcap", reno_flow)
        c = FlowWorkItem("two.pcap", reno_flow)
        assert a.shard() == b.shard()     # pure function, no hash salt
        assert a.shard() != c.shard()
        assert isinstance(a.shard(), int)

    def test_digest_tracks_the_flow_bytes(self, reno_flow):
        item = FlowWorkItem("one.pcap", reno_flow)
        assert item.content_digest() == item.content_digest()


class TestAnalyzeFlowItem:
    def test_payload_matches_batch_shape_minus_ingest(self, reno_flow):
        item = FlowWorkItem("cap.pcap", reno_flow, implementation="reno")
        payloads = analyze_flow_item(0, item, 0)
        assert len(payloads) == 1
        payload = payloads[0]
        assert payload["trace"] == "cap.pcap#flow-0000"
        assert payload["implementation"] == "reno"
        assert "identification" in payload
        assert "ingest" not in payload    # the capture is still growing

    def test_injected_failure_comes_back_classified(self, reno_flow):
        item = FlowWorkItem("cap.pcap", reno_flow)
        plan = FaultPlan((FaultSpec(match=item.name, kind="raise",
                                    exception="OSError"),))
        payloads = analyze_flow_item(0, item, 0, fault_plan=plan)
        assert payloads[0]["error_kind"] == "io"


class TestFlowScheduler:
    def test_round_trip_journals_then_replays(self, reno_flow, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = BatchJournal(journal_path, stream=True, resume=True)
        scheduler = FlowScheduler(1, journal=journal)
        item = FlowWorkItem("cap.pcap", reno_flow, implementation="reno")
        assert scheduler.submit(item) == []
        results = scheduler.drain()
        scheduler.close()
        journal.close()
        assert [name for name, _ in results] == ["cap.pcap#flow-0000"]

        # A restarted scheduler replays the journaled flow instantly.
        journal = BatchJournal(journal_path, stream=True, resume=True)
        restarted = FlowScheduler(1, journal=journal)
        replay = restarted.submit(
            FlowWorkItem("cap.pcap", reno_flow, implementation="reno"))
        restarted.close()
        journal.close()
        assert replay == results
        assert restarted.replayed == 1

    def test_transient_failures_are_never_journaled(self, reno_flow,
                                                    tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        item = FlowWorkItem("cap.pcap", reno_flow)
        plan = FaultPlan((FaultSpec(match=item.name, kind="raise",
                                    exception="OSError"),))
        journal = BatchJournal(journal_path, stream=True, resume=True)
        scheduler = FlowScheduler(1, journal=journal, fault_plan=plan)
        scheduler.submit(item)
        results = scheduler.drain()
        scheduler.close()
        journal.close()
        assert results[0][1][0]["error_kind"] == "io"

        # Restart: the io quarantine was transient, so no replay —
        # the flow is analyzed again (and succeeds without the fault).
        journal = BatchJournal(journal_path, stream=True, resume=True)
        retried = FlowScheduler(1, journal=journal)
        assert retried.submit(FlowWorkItem("cap.pcap", reno_flow)) == []
        fresh = retried.drain()
        retried.close()
        journal.close()
        assert retried.replayed == 0
        assert "error_kind" not in fresh[0][1][0]

    def test_outstanding_and_queue_accounting(self, reno_flow, tmp_path):
        scheduler = FlowScheduler(1)
        for source in ("a.pcap", "b.pcap", "c.pcap"):
            scheduler.submit(FlowWorkItem(source, reno_flow))
        assert scheduler.outstanding == 3
        assert scheduler.queue_depth + scheduler.inflight <= 3
        results = scheduler.drain()
        scheduler.close()
        assert scheduler.outstanding == 0
        assert sorted(name for name, _ in results) == \
            ["a.pcap#flow-0000", "b.pcap#flow-0000", "c.pcap#flow-0000"]
