"""The JSONL sink: per-source files, cross-restart duplicate dropping."""

import errno
import json
import os

from repro.serve import JsonlSink


def payload(name: str, **extra) -> dict:
    return {"trace": name, "implementation": "reno", **extra}


class TestJsonlSink:
    def test_writes_sorted_jsonl_per_source(self, tmp_path):
        sink = JsonlSink(tmp_path)
        wrote = sink.write("cap.pcap", [payload("cap.pcap#flow-0000"),
                                        payload("cap.pcap#flow-0001")])
        sink.close()
        assert wrote == 2
        lines = (tmp_path / "cap.pcap.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["trace"] == "cap.pcap#flow-0000"
        # Key-sorted, same as write_jsonl / batch --stream output.
        assert lines[0] == json.dumps(first, sort_keys=True)

    def test_duplicate_offers_are_dropped_in_process(self, tmp_path):
        sink = JsonlSink(tmp_path)
        assert sink.write("s", [payload("s#flow-0000")]) == 1
        assert sink.write("s", [payload("s#flow-0000")]) == 0
        sink.close()
        assert len((tmp_path / "s.jsonl").read_text().splitlines()) == 1

    def test_duplicates_dropped_across_restart(self, tmp_path):
        first = JsonlSink(tmp_path)
        first.write("s", [payload("s#flow-0000")])
        first.close()
        second = JsonlSink(tmp_path)
        assert "s#flow-0000" in second
        assert second.write("s", [payload("s#flow-0000"),
                                  payload("s#flow-0001")]) == 1
        second.close()
        names = [json.loads(line)["trace"]
                 for line in (tmp_path / "s.jsonl").read_text().splitlines()]
        assert names == ["s#flow-0000", "s#flow-0001"]

    def test_torn_trailing_line_is_tolerated_on_restart(self, tmp_path):
        first = JsonlSink(tmp_path)
        first.write("s", [payload("s#flow-0000")])
        first.close()
        # Simulate a hard kill mid-write: a torn, unparseable tail.
        with open(tmp_path / "s.jsonl", "a") as handle:
            handle.write('{"trace": "s#flow-0001", "implem')
        second = JsonlSink(tmp_path)
        assert "s#flow-0000" in second
        # The torn line never parsed, so that flow is NOT deduped —
        # its journal replay re-offers it and it lands whole.
        assert second.write("s", [payload("s#flow-0001")]) == 1
        second.close()


class FlakyDisk:
    """Fault hook: raise ENOSPC while ``broken``; count calls."""

    def __init__(self):
        self.broken = False
        self.calls = 0

    def __call__(self, source: str) -> None:
        self.calls += 1
        if self.broken:
            raise OSError(errno.ENOSPC, "No space left on device")


class TestSinkDegradation:
    def test_enospc_parks_instead_of_raising(self, tmp_path):
        disk = FlakyDisk()
        sink = JsonlSink(tmp_path, fault_hook=disk)
        disk.broken = True
        assert sink.write("s", [payload("s#flow-0000")]) == 0
        assert sink.degraded and sink.failing
        assert sink.parked == 1
        assert sink.write_errors == 1
        assert sink.last_error.errno == errno.ENOSPC
        sink.close()

    def test_later_writes_queue_behind_a_parked_payload(self, tmp_path):
        disk = FlakyDisk()
        sink = JsonlSink(tmp_path, fault_hook=disk)
        disk.broken = True
        sink.write("s", [payload("s#flow-0000")])
        disk.broken = False
        # Order must hold: flow-0001 may not overtake parked flow-0000.
        assert sink.write("s", [payload("s#flow-0001")]) == 0
        assert sink.parked == 2
        assert sink.flush_parked() == 2
        assert not sink.degraded and not sink.failing
        sink.close()
        names = [json.loads(line)["trace"] for line in
                 (tmp_path / "s.jsonl").read_text().splitlines()]
        assert names == ["s#flow-0000", "s#flow-0001"]

    def test_flush_stops_at_the_first_failure(self, tmp_path):
        disk = FlakyDisk()
        sink = JsonlSink(tmp_path, fault_hook=disk)
        disk.broken = True
        sink.write("s", [payload("s#flow-0000"), payload("s#flow-0001")])
        assert sink.flush_parked() == 0
        assert sink.parked == 2
        sink.close()

    def test_park_dedupes_and_flushes_once(self, tmp_path):
        sink = JsonlSink(tmp_path)
        sink.write("s", [payload("s#flow-0000")])
        line = payload("s#flow-0000")
        assert sink.park("s", [line]) == 0        # already durable
        fresh = payload("s#flow-0001")
        assert sink.park("s", [fresh]) == 1
        assert sink.park("s", [fresh]) == 0       # identity dedupe
        assert sink.degraded and not sink.failing  # parked by choice
        assert sink.flush_parked() == 1
        sink.close()
        lines = (tmp_path / "s.jsonl").read_text().splitlines()
        assert len(lines) == 2

    def test_torn_tail_is_repaired_before_the_next_append(self, tmp_path):
        sink = JsonlSink(tmp_path)
        sink.write("s", [payload("s#flow-0000")])
        sink.close()
        # A failed append leaves a torn fragment with no newline.
        with open(tmp_path / "s.jsonl", "a") as handle:
            handle.write('{"trace": "s#flow-9999", "half')
        sink = JsonlSink(tmp_path)
        sink._dirty.add("s")
        sink.write("s", [payload("s#flow-0001")])
        sink.close()
        lines = (tmp_path / "s.jsonl").read_text().splitlines()
        # Fragment terminated on its own line; both real lines parse.
        parsed = []
        for line in lines:
            try:
                parsed.append(json.loads(line)["trace"])
            except json.JSONDecodeError:
                pass
        assert parsed == ["s#flow-0000", "s#flow-0001"]

    def test_fsync_flag_still_writes_plain_lines(self, tmp_path):
        sink = JsonlSink(tmp_path, fsync=True)
        assert sink.write("s", [payload("s#flow-0000")]) == 1
        sink.close()
        line = (tmp_path / "s.jsonl").read_text()
        assert json.loads(line)["trace"] == "s#flow-0000"

    def test_recovery_probe_clears_failing(self, tmp_path):
        disk = FlakyDisk()
        sink = JsonlSink(tmp_path, fault_hook=disk)
        disk.broken = True
        sink.write("s", [payload("s#flow-0000")])
        assert sink.failing
        disk.broken = False
        sink.flush_parked()
        assert not sink.failing
        sink.close()
