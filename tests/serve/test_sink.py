"""The JSONL sink: per-source files, cross-restart duplicate dropping."""

import json

from repro.serve import JsonlSink


def payload(name: str, **extra) -> dict:
    return {"trace": name, "implementation": "reno", **extra}


class TestJsonlSink:
    def test_writes_sorted_jsonl_per_source(self, tmp_path):
        sink = JsonlSink(tmp_path)
        wrote = sink.write("cap.pcap", [payload("cap.pcap#flow-0000"),
                                        payload("cap.pcap#flow-0001")])
        sink.close()
        assert wrote == 2
        lines = (tmp_path / "cap.pcap.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["trace"] == "cap.pcap#flow-0000"
        # Key-sorted, same as write_jsonl / batch --stream output.
        assert lines[0] == json.dumps(first, sort_keys=True)

    def test_duplicate_offers_are_dropped_in_process(self, tmp_path):
        sink = JsonlSink(tmp_path)
        assert sink.write("s", [payload("s#flow-0000")]) == 1
        assert sink.write("s", [payload("s#flow-0000")]) == 0
        sink.close()
        assert len((tmp_path / "s.jsonl").read_text().splitlines()) == 1

    def test_duplicates_dropped_across_restart(self, tmp_path):
        first = JsonlSink(tmp_path)
        first.write("s", [payload("s#flow-0000")])
        first.close()
        second = JsonlSink(tmp_path)
        assert "s#flow-0000" in second
        assert second.write("s", [payload("s#flow-0000"),
                                  payload("s#flow-0001")]) == 1
        second.close()
        names = [json.loads(line)["trace"]
                 for line in (tmp_path / "s.jsonl").read_text().splitlines()]
        assert names == ["s#flow-0000", "s#flow-0001"]

    def test_torn_trailing_line_is_tolerated_on_restart(self, tmp_path):
        first = JsonlSink(tmp_path)
        first.write("s", [payload("s#flow-0000")])
        first.close()
        # Simulate a hard kill mid-write: a torn, unparseable tail.
        with open(tmp_path / "s.jsonl", "a") as handle:
            handle.write('{"trace": "s#flow-0001", "implem')
        second = JsonlSink(tmp_path)
        assert "s#flow-0000" in second
        # The torn line never parsed, so that flow is NOT deduped —
        # its journal replay re-offers it and it lands whole.
        assert second.write("s", [payload("s#flow-0001")]) == 1
        second.close()
