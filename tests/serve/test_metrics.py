"""Serve metrics: rolling windows, payload accounting, snapshots."""

import pytest

from repro.packets import ACK, Endpoint
from repro.serve import RollingWindow, ServeMetrics, flow_retransmission_rate
from repro.trace.record import TraceRecord


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestRollingWindow:
    def test_rejects_nonpositive_span(self):
        with pytest.raises(ValueError):
            RollingWindow(span=0.0)

    def test_old_observations_fall_off(self):
        clock = FakeClock()
        window = RollingWindow(span=10.0, clock=clock)
        window.observe("a")
        clock.now = 5.0
        window.observe("b")
        assert window.values() == ["a", "b"]
        clock.now = 10.5           # "a" is now 10.5s old, past the span
        assert window.values() == ["b"]
        assert len(window) == 1

    def test_counts_tally_discrete_labels(self):
        window = RollingWindow(span=100.0, clock=FakeClock())
        for label in ("reno", "tahoe", "reno"):
            window.observe(label)
        assert window.counts() == {"reno": 2, "tahoe": 1}

    def test_mean_of_numeric_observations(self):
        window = RollingWindow(span=100.0, clock=FakeClock())
        assert window.mean() is None
        window.observe(0.0)
        window.observe(0.5)
        assert window.mean() == 0.25


class TestServeMetrics:
    def test_identified_payload_tallies_the_best_fit(self):
        metrics = ServeMetrics(clock=FakeClock())
        metrics.observe_payload({
            "trace": "cap.pcap#flow-0000",
            "identification": {"best": "reno", "best_category": "close"},
        })
        assert metrics.flows_completed == 1
        assert metrics.identifications.counts() == {"reno": 1}

    def test_non_close_best_counts_as_no_fit(self):
        metrics = ServeMetrics(clock=FakeClock())
        metrics.observe_payload({
            "identification": {"best": "reno", "best_category": "imperfect"},
        })
        assert metrics.identifications.counts() == {"(no close fit)": 1}

    def test_error_payload_tallies_quarantine_kind(self):
        metrics = ServeMetrics(clock=FakeClock())
        metrics.observe_payload({"trace": "x", "error_kind": "decode",
                                 "error": "boom"})
        assert metrics.flows_quarantined == 1
        assert metrics.quarantines.counts() == {"decode": 1}
        assert metrics.identifications.counts() == {}

    def test_snapshot_is_json_shaped_and_stable(self):
        import json

        clock = FakeClock()
        metrics = ServeMetrics(window=60.0, clock=clock)
        metrics.records_ingested = 7
        metrics.paused = True
        clock.now = 2.0
        snapshot = json.loads(json.dumps(metrics.to_dict()))
        assert snapshot["uptime_seconds"] == 2.0
        assert snapshot["counters"]["records_ingested"] == 7
        assert snapshot["gauges"]["paused"] is True
        assert snapshot["rolling"]["window_seconds"] == 60.0

    def test_retirement_hook_tallies_close_reasons(self):
        class FlowStub:
            close_reason = "fin"

        metrics = ServeMetrics(clock=FakeClock())
        metrics.observe_retirement(FlowStub())
        metrics.observe_retirement(FlowStub())
        assert metrics.retirements.counts() == {"fin": 2}


class TestFlowRetransmissionRate:
    SRC = Endpoint("sender", 1024)
    DST = Endpoint("receiver", 9000)

    def rec(self, seq: int, payload: int = 512) -> TraceRecord:
        return TraceRecord(timestamp=0.0, src=self.SRC, dst=self.DST,
                           seq=seq, ack=0, flags=ACK, payload=payload,
                           window=8192)

    def test_zero_without_data_packets(self):
        assert flow_retransmission_rate([self.rec(0, payload=0)]) == 0.0
        assert flow_retransmission_rate([]) == 0.0

    def test_counts_resent_sequence_numbers(self):
        records = [self.rec(0), self.rec(512), self.rec(0), self.rec(1024)]
        assert flow_retransmission_rate(records) == pytest.approx(0.25)

    def test_directions_are_independent(self):
        forward = self.rec(0)
        backward = TraceRecord(timestamp=0.0, src=self.DST, dst=self.SRC,
                               seq=0, ack=0, flags=ACK, payload=512,
                               window=8192)
        assert flow_retransmission_rate([forward, backward]) == 0.0
