"""The daemon loop in-process: equivalence, backpressure, resilience.

Signal-driven drain (SIGTERM mid-stream) needs a real process and
lives in ``tests/test_serve_interrupt.py``; everything else about the
loop is exercised here via ``exit_when_idle``, the batch-comparison
shutdown shape.
"""

import json

import pytest

from repro.harness.corpus import generate_interleaved_capture
from repro.harness.faults import (
    FaultPlan,
    FaultSpec,
    ResourceFaultPlan,
    ResourceFaultSpec,
)
from repro.pipeline.runner import BatchItem, run_batch
from repro.serve import FlowScheduler, JsonlSink, ServeConfig, ServeDaemon
from repro.trace.pcap import write_pcap


@pytest.fixture(scope="module")
def live_capture(tmp_path_factory):
    """A 4-connection interleaved capture on disk."""
    outdir = tmp_path_factory.mktemp("serve-capture")
    capture = generate_interleaved_capture(
        ["reno", "tahoe"], connections=4, scenarios=("wan",),
        data_size=8192)
    path = outdir / "live.pcap"
    write_pcap(capture.trace, path)
    return path


def serve_config(out_dir, **overrides) -> ServeConfig:
    spec = dict(out_dir=out_dir, workers=2, exit_when_idle=True,
                quiet_seconds=0.3, poll_interval=0.05)
    spec.update(overrides)
    return ServeConfig(**spec)


def sink_lines(out_dir, source: str) -> list[dict]:
    path = out_dir / "results" / f"{source}.jsonl"
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestLiveBatchEquivalence:
    def test_sink_matches_batch_stream_byte_for_byte(self, live_capture,
                                                     tmp_path):
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(out, captures=[live_capture]))
        assert daemon.run() == 0

        batch = run_batch([BatchItem(name=live_capture.name,
                                     path=live_capture)],
                          jobs=1, stream=True)
        expected = []
        for result in batch.results:
            payload = dict(result.payload)
            payload.pop("ingest", None)   # capture-wide; serve has none
            expected.append(json.dumps(payload, sort_keys=True))
        got = [json.dumps(payload, sort_keys=True)
               for payload in sink_lines(out, live_capture.name)]
        assert sorted(got) == sorted(expected)
        assert daemon.metrics.flows_completed == len(expected)
        assert daemon.metrics.flows_quarantined == 0

    def test_rerun_replays_from_journal_without_reanalysis(
            self, live_capture, tmp_path):
        out = tmp_path / "out"
        first = ServeDaemon(serve_config(out, captures=[live_capture]))
        assert first.run() == 0
        lines_before = sink_lines(out, live_capture.name)

        second = ServeDaemon(serve_config(out, captures=[live_capture]))
        assert second.run() == 0
        assert second.metrics.journal_skips == len(lines_before)
        # The sink deduped every replayed flow: zero new lines.
        assert sink_lines(out, live_capture.name) == lines_before


class TestSpoolDiscovery:
    def test_dropped_capture_is_analyzed(self, live_capture, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "drop.pcap").write_bytes(live_capture.read_bytes())
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(out, spool=spool))
        assert daemon.run() == 0
        assert len(sink_lines(out, "drop.pcap")) == 4
        assert daemon.metrics.sources == 1


class TestSourceQuarantine:
    def test_non_pcap_source_gets_one_classified_line(self, tmp_path):
        bogus = tmp_path / "bogus.pcap"
        bogus.write_bytes(b"these bytes are not a capture at all....")
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(out, captures=[bogus]))
        assert daemon.run() == 0
        lines = sink_lines(out, "bogus.pcap")
        assert len(lines) == 1
        assert lines[0]["error_kind"] == "decode"
        assert daemon.metrics.sources_failed == 1


class TestBackpressure:
    def test_slow_worker_pauses_tailing_then_recovers(self, tmp_path):
        # Connections spaced 20s apart in stream time: each closes and
        # the next connection's records push it past time-wait, so
        # flows retire *mid-stream* and queue on the single worker —
        # which a hang fault pins down for long enough that the queue
        # crosses the high-water mark and tailing must pause.
        capture = generate_interleaved_capture(
            ["reno", "tahoe"], connections=8, scenarios=("wan",),
            data_size=4096, start_interval=20.0)
        path = tmp_path / "busy.pcap"
        write_pcap(capture.trace, path)
        plan = FaultPlan((FaultSpec(match=0, kind="hang",
                                    hang_seconds=0.6),))
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(
            out, captures=[path], workers=1, records_per_poll=64,
            high_water=2, low_water=1, fault_plan=plan))
        assert daemon.run() == 0
        assert daemon.metrics.pause_events >= 1
        assert daemon.paused is False             # resumed before exit
        assert len(sink_lines(out, "busy.pcap")) == 8
        assert daemon.metrics.flows_quarantined == 0


class TestWorkerDeath:
    def test_persistent_crasher_quarantines_not_kills_the_daemon(
            self, live_capture, tmp_path):
        plan = FaultPlan((FaultSpec(match="live.pcap#flow-0000",
                                    kind="kill"),))
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(
            out, captures=[live_capture], workers=1, retries=1,
            fault_plan=plan))
        assert daemon.run() == 0
        lines = {line["trace"]: line
                 for line in sink_lines(out, "live.pcap")}
        assert len(lines) == 4
        assert lines["live.pcap#flow-0000"]["error_kind"] == "crash"
        healthy = [line for name, line in lines.items()
                   if name != "live.pcap#flow-0000"]
        assert all("error_kind" not in line for line in healthy)
        assert daemon.metrics.worker_restarts >= 1
        assert daemon.metrics.flows_quarantined == 1


class TestSourceIsolation:
    def test_crash_looping_source_is_quarantined_healthy_ones_finish(
            self, live_capture, tmp_path):
        # Every flow of bad.pcap kills its worker; the breaker must
        # quarantine bad.pcap while live.pcap completes untouched.
        bad = tmp_path / "bad.pcap"
        bad.write_bytes(live_capture.read_bytes())
        plan = FaultPlan((FaultSpec(match="bad.pcap#*", kind="kill"),))
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(
            out, captures=[live_capture, bad], workers=2, retries=0,
            fault_plan=plan, breaker_failures=1, breaker_trips=1))
        assert daemon.run() == 0
        assert daemon.breakers.states()["bad.pcap"] == "quarantined"
        assert daemon.breakers.states()["live.pcap"] == "closed"
        assert daemon.metrics.breaker_quarantines == 1
        healthy = sink_lines(out, "live.pcap")
        assert len(healthy) == 4
        assert all("error_kind" not in line for line in healthy)
        assert daemon.metrics.health_state == "healthy"

    def test_breaker_states_reach_the_stats_snapshot(self, live_capture,
                                                     tmp_path):
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(out, captures=[live_capture]))
        assert daemon.run() == 0
        snapshot = daemon.metrics.to_dict()
        assert snapshot["health"]["state"] == "healthy"
        assert snapshot["health"]["breakers"] == {"live.pcap": "closed"}


class TestRotationPolicies:
    def drive(self, daemon, out):
        daemon._sink = JsonlSink(out / "results")
        daemon._scheduler = FlowScheduler(1)

    def finish(self, daemon):
        daemon._scheduler.close()
        daemon._sink.close()

    def test_quarantine_policy_emits_a_classified_line(self, live_capture,
                                                       tmp_path):
        data = live_capture.read_bytes()
        path = tmp_path / "rot.pcap"
        path.write_bytes(data)
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(out, captures=[path]))
        self.drive(daemon, out)
        daemon._add_source(path)
        daemon._tail()
        path.write_bytes(data[:100])      # copytruncate under the tailer
        daemon._tail()
        self.finish(daemon)
        assert daemon.metrics.rotations == 1
        assert daemon.breakers.states()["rot.pcap"] == "quarantined"
        lines = sink_lines(out, "rot.pcap")
        assert lines[-1]["error_kind"] == "io"
        assert "rotated" in lines[-1]["error"]

    def test_restart_policy_retails_under_a_fresh_source_name(
            self, live_capture, tmp_path):
        data = live_capture.read_bytes()
        path = tmp_path / "rot.pcap"
        path.write_bytes(data)
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(out, captures=[path],
                                          on_rotate="restart"))
        self.drive(daemon, out)
        old = daemon._add_source(path)
        daemon._tail()
        submitted_before = daemon.metrics.flows_submitted
        path.write_bytes(data[:100])
        daemon._tail()
        self.finish(daemon)
        assert daemon.metrics.rotations == 1
        # The truncated incarnation's open flows went to analysis...
        assert daemon.metrics.flows_submitted > submitted_before
        # ...and the new incarnation tails under a suffixed name, so
        # its flow names can never collide in the sink.
        assert daemon._by_path[path] is not old
        assert daemon._by_path[path].source == "rot.pcap~2"
        assert "quarantined" not in daemon.breakers.states().values()


class TestDegradationLadder:
    def test_memory_pressure_sheds_flows_and_recovers(self, tmp_path):
        # Connections spaced out in stream time with a tiny poll
        # budget: several flows are live at once, tripping the
        # max_live_flows watchdog, which early-retires the oldest.
        capture = generate_interleaved_capture(
            ["reno", "tahoe"], connections=6, scenarios=("wan",),
            data_size=4096, start_interval=20.0)
        path = tmp_path / "busy.pcap"
        write_pcap(capture.trace, path)
        out = tmp_path / "out"
        daemon = ServeDaemon(serve_config(
            out, captures=[path], records_per_poll=64,
            max_live_flows=1))
        assert daemon.run() == 0
        assert daemon.metrics.flows_shed >= 1
        # Shedding split no work away: every record of every flow is
        # analyzed (a shed flow's remainder re-enters as a new flow).
        lines = sink_lines(out, "busy.pcap")
        assert len(lines) >= 6
        assert daemon.metrics.health_state == "healthy"   # recovered

    def test_sink_enospc_enters_journal_only_and_restart_replays(
            self, live_capture, tmp_path):
        out = tmp_path / "out"
        # First two sink appends succeed, then the disk "fills".
        faults = ResourceFaultPlan((
            ResourceFaultSpec(kind="enospc", after_calls=2),))
        first = ServeDaemon(serve_config(out, captures=[live_capture],
                                         resource_faults=faults))
        assert first.run() == 0           # never exits non-gracefully
        assert first.metrics.sink_errors >= 1
        written = sink_lines(out, live_capture.name)
        assert len(written) == 2          # the two that landed
        # Everything was journaled even though the sink could not
        # write: the restart replays and the missing lines land
        # exactly once, no duplicates.
        second = ServeDaemon(serve_config(out, captures=[live_capture]))
        assert second.run() == 0
        assert second.metrics.journal_skips == 4
        lines = sink_lines(out, live_capture.name)
        names = [line["trace"] for line in lines]
        assert len(names) == len(set(names)) == 4
