"""Tailing a growing capture: incremental consumption, honest lag."""

import pytest

from repro.serve import CaptureTailer
from repro.trace.pcap import write_pcap
from repro.trace.wire import AddressMap

from tests.conftest import cached_transfer


@pytest.fixture
def capture_bytes(tmp_path):
    trace = cached_transfer("reno").sender_trace
    path = tmp_path / "whole.pcap"
    write_pcap(trace, path, addresses=AddressMap())
    return path.read_bytes(), len(trace)


class TestCaptureTailer:
    def test_source_defaults_to_the_file_name(self, tmp_path):
        tailer = CaptureTailer(tmp_path / "eth0.pcap")
        assert tailer.source == "eth0.pcap"

    def test_chunked_growth_consumes_everything(self, tmp_path,
                                                capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "grow.pcap"
        path.write_bytes(b"")
        tailer = CaptureTailer(path)
        for start in range(0, len(data), 1000):
            with open(path, "ab") as handle:
                handle.write(data[start:start + 1000])
            tailer.poll()
        flows = tailer.finalize()
        assert tailer.records_consumed == total
        assert tailer.ingest_lag == 0
        assert len(flows) == 1
        assert len(flows[0].records) == total

    def test_partial_trailing_record_keeps_lag_honest(self, tmp_path,
                                                      capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "grow.pcap"
        cut = len(data) - 25          # inside the final record
        path.write_bytes(data[:cut])
        tailer = CaptureTailer(path)
        tailer.poll()
        assert tailer.records_consumed == total - 1
        assert tailer.ingest_lag > 0  # the partial bytes are pending
        with open(path, "ab") as handle:
            handle.write(data[cut:])
        tailer.poll()
        assert tailer.records_consumed == total
        assert tailer.ingest_lag == 0

    def test_records_per_poll_bounds_one_poll(self, tmp_path,
                                              capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "big.pcap"
        path.write_bytes(data)
        tailer = CaptureTailer(path, records_per_poll=10)
        tailer.poll()
        assert tailer.records_consumed == 10
        assert tailer.ingest_lag > 0
        while tailer.records_consumed < total:
            before = tailer.records_consumed
            tailer.poll()
            assert tailer.records_consumed > before

    def test_non_pcap_source_fails_once_not_forever(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"this is not a capture file, sorry...")
        tailer = CaptureTailer(path)
        assert tailer.poll() == []
        assert tailer.failed is not None
        assert tailer.poll() == []    # quarantined: no further reads

    def test_not_yet_existing_file_polls_empty(self, tmp_path,
                                               capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "later.pcap"
        tailer = CaptureTailer(path)
        assert tailer.poll() == []
        assert tailer.ingest_lag == 0
        path.write_bytes(data)
        tailer.poll()
        assert tailer.records_consumed == total


class TestTailerFailureClassification:
    def test_truncation_in_place_is_a_rotated_failure(self, tmp_path,
                                                      capture_bytes):
        data, _total = capture_bytes
        path = tmp_path / "rot.pcap"
        path.write_bytes(data)
        tailer = CaptureTailer(path)
        tailer.poll()
        assert tailer.records_consumed > 0
        # logrotate-style copytruncate: the file shrinks under us.
        path.write_bytes(data[:50])
        assert tailer.poll() == []
        assert tailer.rotated
        assert tailer.failed is not None
        assert tailer.failed.kind == "io"

    def test_recreation_with_new_inode_is_rotated(self, tmp_path,
                                                  capture_bytes):
        data, _total = capture_bytes
        path = tmp_path / "rot.pcap"
        path.write_bytes(data[:2000])
        tailer = CaptureTailer(path)
        tailer.poll()
        # Replace with a different, *larger* file: size alone cannot
        # catch this — the inode comparison must.
        path.unlink()
        path.write_bytes(b"\x00" * (len(data) + 4096))
        assert tailer.poll() == []
        assert tailer.rotated

    def test_deleted_mid_tail_quarantines_as_io(self, tmp_path,
                                                capture_bytes):
        data, _total = capture_bytes
        path = tmp_path / "gone.pcap"
        path.write_bytes(data)
        tailer = CaptureTailer(path)
        tailer.poll()
        path.unlink()
        assert tailer.poll() == []
        assert tailer.failed is not None
        assert tailer.failed.kind == "io"
        assert not tailer.rotated         # deletion is not rotation
        assert tailer.poll() == []        # quarantined: stays failed

    def test_growth_is_never_mistaken_for_rotation(self, tmp_path,
                                                   capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "grow.pcap"
        path.write_bytes(data[:2000])
        tailer = CaptureTailer(path)
        tailer.poll()
        with open(path, "ab") as handle:
            handle.write(data[2000:])
        tailer.poll()
        assert tailer.failed is None
        assert not tailer.rotated
        tailer.finalize()
        assert tailer.records_consumed == total

    def test_decode_storm_is_quarantined_not_retried(self, tmp_path):
        from repro.harness.faults import decode_storm_bytes
        path = tmp_path / "storm.pcap"
        path.write_bytes(decode_storm_bytes(records=256))
        tailer = CaptureTailer(path)
        assert tailer.poll() == []
        assert tailer.failed is not None
        assert tailer.failed.kind == "decode"
        assert "decode storm" in str(tailer.failed)

    def test_a_few_leading_decode_errors_are_not_a_storm(self, tmp_path,
                                                         capture_bytes):
        import struct
        data, total = capture_bytes
        path = tmp_path / "noisy.pcap"
        # 8 garbage records (well under the threshold), then the real
        # capture's records: the tailer must keep going.  Noise is
        # framed in the capture's own (big-endian) record format, with
        # an IP version nibble of 0 so every packet decode-errors.
        noise = b""
        for index in range(8):
            payload = bytes((index * 37 + j) % 256 for j in range(40))
            payload = b"\x00" + payload[1:]
            noise += struct.pack(">IIII", 0, index,
                                 len(payload), len(payload)) + payload
        header_len = 24
        path.write_bytes(data[:header_len] + noise + data[header_len:])
        tailer = CaptureTailer(path)
        tailer.poll()
        assert tailer.failed is None
        assert tailer.stats.decode_errors == 8
        assert tailer.records_consumed == total

    def test_shed_retires_oldest_flows_early(self, tmp_path,
                                             capture_bytes):
        data, _total = capture_bytes
        path = tmp_path / "shed.pcap"
        path.write_bytes(data[:len(data) // 2])
        tailer = CaptureTailer(path)
        tailer.poll()
        assert tailer.live_flows == 1
        shed = tailer.shed(5)
        assert len(shed) == 1
        assert shed[0].close_reason == "shed"
        assert tailer.live_flows == 0

    def test_drain_open_flows_for_rotation_restart(self, tmp_path,
                                                   capture_bytes):
        data, _total = capture_bytes
        path = tmp_path / "rot.pcap"
        path.write_bytes(data)
        tailer = CaptureTailer(path)
        tailer.poll()
        path.write_bytes(data[:50])       # rotate in place
        tailer.poll()
        assert tailer.rotated
        flows = tailer.drain_open_flows()
        assert len(flows) == 1            # the half-tailed flow
        assert flows[0].records
