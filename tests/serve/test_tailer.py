"""Tailing a growing capture: incremental consumption, honest lag."""

import pytest

from repro.serve import CaptureTailer
from repro.trace.pcap import write_pcap
from repro.trace.wire import AddressMap

from tests.conftest import cached_transfer


@pytest.fixture
def capture_bytes(tmp_path):
    trace = cached_transfer("reno").sender_trace
    path = tmp_path / "whole.pcap"
    write_pcap(trace, path, addresses=AddressMap())
    return path.read_bytes(), len(trace)


class TestCaptureTailer:
    def test_source_defaults_to_the_file_name(self, tmp_path):
        tailer = CaptureTailer(tmp_path / "eth0.pcap")
        assert tailer.source == "eth0.pcap"

    def test_chunked_growth_consumes_everything(self, tmp_path,
                                                capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "grow.pcap"
        path.write_bytes(b"")
        tailer = CaptureTailer(path)
        for start in range(0, len(data), 1000):
            with open(path, "ab") as handle:
                handle.write(data[start:start + 1000])
            tailer.poll()
        flows = tailer.finalize()
        assert tailer.records_consumed == total
        assert tailer.ingest_lag == 0
        assert len(flows) == 1
        assert len(flows[0].records) == total

    def test_partial_trailing_record_keeps_lag_honest(self, tmp_path,
                                                      capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "grow.pcap"
        cut = len(data) - 25          # inside the final record
        path.write_bytes(data[:cut])
        tailer = CaptureTailer(path)
        tailer.poll()
        assert tailer.records_consumed == total - 1
        assert tailer.ingest_lag > 0  # the partial bytes are pending
        with open(path, "ab") as handle:
            handle.write(data[cut:])
        tailer.poll()
        assert tailer.records_consumed == total
        assert tailer.ingest_lag == 0

    def test_records_per_poll_bounds_one_poll(self, tmp_path,
                                              capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "big.pcap"
        path.write_bytes(data)
        tailer = CaptureTailer(path, records_per_poll=10)
        tailer.poll()
        assert tailer.records_consumed == 10
        assert tailer.ingest_lag > 0
        while tailer.records_consumed < total:
            before = tailer.records_consumed
            tailer.poll()
            assert tailer.records_consumed > before

    def test_non_pcap_source_fails_once_not_forever(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"this is not a capture file, sorry...")
        tailer = CaptureTailer(path)
        assert tailer.poll() == []
        assert tailer.failed is not None
        assert tailer.poll() == []    # quarantined: no further reads

    def test_not_yet_existing_file_polls_empty(self, tmp_path,
                                               capture_bytes):
        data, total = capture_bytes
        path = tmp_path / "later.pcap"
        tailer = CaptureTailer(path)
        assert tailer.poll() == []
        assert tailer.ingest_lag == 0
        path.write_bytes(data)
        tailer.poll()
        assert tailer.records_consumed == total
