"""The stats/health endpoint: liveness, readiness, snapshots, 404s."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve.httpd import StatsServer


@pytest.fixture
def server():
    state = {"ready": False, "stats": {"answer": 42}}
    httpd = StatsServer(lambda: state["stats"], lambda: state["ready"],
                        port=0)
    httpd.start()
    yield httpd, state
    httpd.stop()


def get(port: int, path: str):
    return urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                  timeout=5)


class TestStatsServer:
    def test_healthz_is_always_200(self, server):
        httpd, _state = server
        with get(httpd.port, "/healthz") as response:
            assert response.status == 200
            assert response.read() == b"ok\n"

    def test_readyz_tracks_daemon_readiness(self, server):
        httpd, state = server
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(httpd.port, "/readyz")
        assert caught.value.code == 503
        state["ready"] = True
        with get(httpd.port, "/readyz") as response:
            assert response.status == 200

    def test_stats_returns_the_snapshot_as_json(self, server):
        httpd, state = server
        with get(httpd.port, "/stats") as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/json"
            assert json.load(response) == {"answer": 42}
        state["stats"] = {"answer": 43}
        with get(httpd.port, "/stats") as response:
            assert json.load(response) == {"answer": 43}

    def test_unknown_path_is_404(self, server):
        httpd, _state = server
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(httpd.port, "/metrics")
        assert caught.value.code == 404

    def test_ephemeral_port_is_real(self, server):
        httpd, _state = server
        assert httpd.port > 0
