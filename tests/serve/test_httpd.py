"""The stats/health endpoint: liveness, readiness, snapshots, 404s."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve.httpd import PROMETHEUS_CONTENT_TYPE, StatsServer


@pytest.fixture
def server():
    state = {"ready": False, "stats": {"answer": 42}}
    httpd = StatsServer(lambda: state["stats"], lambda: state["ready"],
                        port=0)
    httpd.start()
    yield httpd, state
    httpd.stop()


def get(port: int, path: str):
    return urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                  timeout=5)


class TestStatsServer:
    def test_healthz_is_always_200(self, server):
        httpd, _state = server
        with get(httpd.port, "/healthz") as response:
            assert response.status == 200
            assert response.read() == b"ok\n"

    def test_readyz_tracks_daemon_readiness(self, server):
        httpd, state = server
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(httpd.port, "/readyz")
        assert caught.value.code == 503
        state["ready"] = True
        with get(httpd.port, "/readyz") as response:
            assert response.status == 200

    def test_stats_returns_the_snapshot_as_json(self, server):
        httpd, state = server
        with get(httpd.port, "/stats") as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/json"
            assert json.load(response) == {"answer": 42}
        state["stats"] = {"answer": 43}
        with get(httpd.port, "/stats") as response:
            assert json.load(response) == {"answer": 43}

    def test_unknown_path_is_404(self, server):
        httpd, _state = server
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(httpd.port, "/nope")
        assert caught.value.code == 404

    def test_ephemeral_port_is_real(self, server):
        httpd, _state = server
        assert httpd.port > 0

    def test_healthz_carries_the_governor_state(self):
        state = {"health": "degraded"}
        httpd = StatsServer(lambda: {}, lambda: True,
                            health_fn=lambda: state["health"], port=0)
        httpd.start()
        try:
            with get(httpd.port, "/healthz") as response:
                assert response.status == 200
                assert response.read() == b"ok degraded\n"
            state["health"] = "healthy"
            with get(httpd.port, "/healthz") as response:
                assert response.read() == b"ok healthy\n"
        finally:
            httpd.stop()

    def test_metrics_serves_prometheus_text(self):
        snapshot = {
            "uptime_seconds": 1.5,
            "counters": {"sink_lines": 7, "breaker_trips": 2},
            "gauges": {"queue_depth": 3, "paused": True},
            "health": {"state": "shedding",
                       "breakers": {"a.pcap": "open"}},
            "rolling": {"identifications": {"Tahoe": 4}},
        }
        httpd = StatsServer(lambda: snapshot, lambda: True, port=0)
        httpd.start()
        try:
            with get(httpd.port, "/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"] \
                    == PROMETHEUS_CONTENT_TYPE
                body = response.read().decode()
        finally:
            httpd.stop()
        assert "tcpanaly_serve_sink_lines_total 7" in body
        assert "tcpanaly_serve_breaker_trips_total 2" in body
        assert "tcpanaly_serve_queue_depth 3" in body
        assert "tcpanaly_serve_paused 1" in body
        assert 'tcpanaly_serve_health_state{state="shedding"} 1' in body
        assert 'tcpanaly_serve_health_state{state="healthy"} 0' in body
        assert ('tcpanaly_serve_breaker_state{source="a.pcap",'
                'state="open"} 1') in body
        assert ('tcpanaly_serve_rolling_identifications'
                '{implementation="Tahoe"} 4') in body
        # Every exposition line is HELP, TYPE, or a sample.
        for line in body.strip().splitlines():
            assert line.startswith("# HELP") \
                or line.startswith("# TYPE") \
                or line.split(" ")[-1].replace(".", "", 1).isdigit()
