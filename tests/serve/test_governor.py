"""Circuit breakers and the resource-governance ladder, clock-driven."""

import pytest

from repro.serve import (
    BreakerBoard,
    CircuitBreaker,
    ResourceGovernor,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("s", clock=FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_open_after_consecutive_failures(self):
        breaker = CircuitBreaker("s", failures=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("s", failures=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_backoff_elapsed_admits_a_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker("s", failures=1, backoff=10.0,
                                 max_trips=5, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_in > 0
        clock.advance(breaker.retry_in + 0.001)
        assert breaker.allow()
        assert breaker.state == "half-open"

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker("s", failures=1, backoff=10.0,
                                 max_trips=5, clock=clock)
        breaker.record_failure()
        clock.advance(breaker.retry_in + 0.001)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        # Trip again: the probe failing goes straight back to open.
        breaker.record_failure()
        clock.advance(breaker.retry_in + 0.001)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_backoff_doubles_per_trip_up_to_the_cap(self):
        clock = FakeClock()
        breaker = CircuitBreaker("s", failures=1, backoff=10.0,
                                 max_backoff=25.0, max_trips=10,
                                 clock=clock)
        waits = []
        for _ in range(4):
            breaker.record_failure()
            waits.append(breaker.retry_in)
            clock.advance(breaker.retry_in + 0.001)
            assert breaker.allow()        # half-open probe
        # Jitter scales each wait identically, so ratios are exact
        # until the cap flattens them.
        assert waits[1] == pytest.approx(2 * waits[0])
        assert waits[2] == pytest.approx(waits[3])   # both capped

    def test_exhausting_trips_quarantines_permanently(self):
        clock = FakeClock()
        breaker = CircuitBreaker("s", failures=1, backoff=1.0,
                                 max_trips=3, clock=clock)
        for _ in range(2):
            breaker.record_failure()
            clock.advance(1000.0)
            assert breaker.allow()
        breaker.record_failure()          # third trip: out of budget
        assert breaker.state == "quarantined"
        clock.advance(1e9)
        assert not breaker.allow()        # absorbing
        breaker.record_success()
        assert breaker.state == "quarantined"

    def test_jitter_is_deterministic_per_name(self):
        a1 = CircuitBreaker("a.pcap", failures=1, clock=FakeClock())
        a2 = CircuitBreaker("a.pcap", failures=1, clock=FakeClock())
        b = CircuitBreaker("b.pcap", failures=1, clock=FakeClock())
        for breaker in (a1, a2, b):
            breaker.record_failure()
        assert a1.retry_in == a2.retry_in
        assert a1.retry_in != b.retry_in


class TestBreakerBoard:
    def test_sources_are_isolated(self):
        board = BreakerBoard(failures=1, clock=FakeClock())
        board.record_failure("bad.pcap")
        assert not board.allow("bad.pcap")
        assert board.allow("good.pcap")

    def test_drain_events_reports_transitions_once(self):
        board = BreakerBoard(failures=1, max_trips=1,
                             clock=FakeClock())
        board.record_failure("bad.pcap")
        events = board.drain_events()
        assert ("bad.pcap", "closed", "quarantined") in events
        assert board.drain_events() == []

    def test_states_and_quarantined_views(self):
        clock = FakeClock()
        board = BreakerBoard(failures=1, max_trips=1, clock=clock)
        board.allow("fine.pcap")
        board.record_failure("bad.pcap")
        assert board.states() == {"bad.pcap": "quarantined",
                                  "fine.pcap": "closed"}
        assert board.quarantined() == {"bad.pcap"}

    def test_blocked_is_side_effect_free(self):
        clock = FakeClock()
        board = BreakerBoard(failures=1, backoff=10.0, max_trips=5,
                             clock=clock)
        board.record_failure("s")
        clock.advance(1000.0)
        # blocked() must NOT consume the open -> half-open transition.
        assert not board.blocked("s")
        assert board.states()["s"] == "open"
        assert board.allow("s")
        assert board.states()["s"] == "half-open"


def governor(tmp_path, **kwargs):
    probes = {"free": 10_000, "rss": 100}
    gov = ResourceGovernor(tmp_path,
                           free_bytes_fn=lambda: probes["free"],
                           rss_fn=lambda: probes["rss"],
                           recovery_ticks=2, **kwargs)
    return gov, probes


class TestResourceGovernor:
    def test_no_budgets_means_healthy_forever(self, tmp_path):
        gov, probes = governor(tmp_path)
        probes["free"] = 0
        probes["rss"] = 10**12
        assert gov.assess(live_flows=10**6) == "healthy"
        assert gov.allows_discovery and not gov.journal_only

    def test_disk_pressure_escalates_to_draining(self, tmp_path):
        gov, probes = governor(tmp_path, min_free_bytes=1000)
        assert gov.assess() == "healthy"
        probes["free"] = 500
        assert gov.assess() == "draining"
        assert gov.journal_only and gov.pause_tailing
        assert not gov.allows_discovery

    def test_half_headroom_is_an_early_warning(self, tmp_path):
        gov, probes = governor(tmp_path, min_free_bytes=1000)
        probes["free"] = 1500     # above the floor, under 2x headroom
        assert gov.assess() == "degraded"
        assert not gov.allows_discovery
        assert not gov.pause_tailing

    def test_rss_pressure_sheds(self, tmp_path):
        gov, probes = governor(tmp_path, max_rss_bytes=1000)
        probes["rss"] = 2000
        assert gov.assess() == "shedding"
        assert gov.should_shed and gov.pause_tailing
        assert not gov.journal_only

    def test_live_flow_budget_sheds(self, tmp_path):
        gov, _probes = governor(tmp_path, max_live_flows=10)
        assert gov.assess(live_flows=9) == "healthy"
        assert gov.assess(live_flows=11) == "shedding"

    def test_sink_failure_forces_draining(self, tmp_path):
        gov, _probes = governor(tmp_path)
        assert gov.assess(sink_failing=True) == "draining"

    def test_recovery_is_hysteretic_one_rung_at_a_time(self, tmp_path):
        gov, probes = governor(tmp_path, min_free_bytes=1000)
        probes["free"] = 500
        assert gov.assess() == "draining"
        # Barely over the floor: inside the margin band, no recovery.
        probes["free"] = 1100
        for _ in range(5):
            assert gov.assess() == "draining"
        # Clear with margin: one rung per recovery_ticks calm ticks.
        probes["free"] = 10_000
        assert gov.assess() == "draining"
        states = [gov.assess() for _ in range(6)]
        assert states == ["shedding", "shedding", "degraded",
                          "degraded", "healthy", "healthy"]

    def test_relapse_resets_the_calm_count(self, tmp_path):
        gov, probes = governor(tmp_path, min_free_bytes=1000)
        probes["free"] = 500
        gov.assess()
        probes["free"] = 10_000
        gov.assess()                       # 1 calm tick
        probes["free"] = 500
        assert gov.assess() == "draining"  # relapse
        probes["free"] = 10_000
        assert gov.assess() == "draining"  # count restarted
        assert gov.assess() == "shedding"

    def test_to_dict_is_json_safe(self, tmp_path):
        gov, _probes = governor(tmp_path, min_free_bytes=1000)
        gov.assess()
        snapshot = gov.to_dict()
        assert snapshot["state"] == "healthy"
        assert snapshot["free_bytes"] == 10_000
        assert snapshot["min_free_bytes"] == 1000
