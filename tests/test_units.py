"""Sequence-space arithmetic and unit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.units import (
    SEQ_SPACE,
    seq_add,
    seq_diff,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_max,
    seq_min,
)

seqs = st.integers(min_value=0, max_value=SEQ_SPACE - 1)
small = st.integers(min_value=-(2**30), max_value=2**30)


class TestConversions:
    def test_kbit(self):
        assert units.kbit(56) == 7000.0

    def test_mbit(self):
        assert units.mbit(1) == 125000.0

    def test_kbyte_uses_powers_of_two(self):
        assert units.kbyte(100) == 102400

    def test_msec(self):
        assert units.msec(200) == pytest.approx(0.2)

    def test_usec(self):
        assert units.usec(300) == pytest.approx(3e-4)


class TestSequenceArithmetic:
    def test_add_wraps(self):
        assert seq_add(SEQ_SPACE - 1, 2) == 1

    def test_diff_simple(self):
        assert seq_diff(1500, 1000) == 500

    def test_diff_across_wrap(self):
        assert seq_diff(10, SEQ_SPACE - 10) == 20

    def test_diff_negative(self):
        assert seq_diff(1000, 1500) == -500

    def test_lt_across_wrap(self):
        assert seq_lt(SEQ_SPACE - 5, 5)

    def test_ordering_basics(self):
        assert seq_lt(1, 2)
        assert seq_le(2, 2)
        assert seq_gt(3, 2)
        assert seq_ge(3, 3)
        assert not seq_lt(2, 2)

    def test_min_max(self):
        assert seq_max(SEQ_SPACE - 5, 5) == 5
        assert seq_min(SEQ_SPACE - 5, 5) == SEQ_SPACE - 5

    @given(seqs, small)
    def test_add_then_diff_roundtrips(self, seq, delta):
        assert seq_diff(seq_add(seq, delta), seq) == delta

    @given(seqs, seqs)
    def test_diff_antisymmetric(self, a, b):
        if seq_diff(a, b) != -(SEQ_SPACE // 2):
            assert seq_diff(a, b) == -seq_diff(b, a)

    @given(seqs, seqs)
    def test_total_order_consistent(self, a, b):
        assert seq_le(a, b) == (seq_lt(a, b) or a == b)
        assert seq_gt(a, b) == seq_lt(b, a)

    @given(seqs, seqs)
    def test_min_max_complementary(self, a, b):
        assert {seq_min(a, b), seq_max(a, b)} == {a, b}
