"""Cross-backend equivalence: numpy columnar vs pure-Python.

The numpy backend (:mod:`repro.trace.columns`) is a performance
accelerator, never a behavioral variant: every analysis result must be
byte-identical whichever backend is selected.  These tests drive the
same traces through both backends and compare full
``TraceReport.to_dict()`` payloads (serialized with sorted keys, so
any divergence — a missing drop-evidence item, a different quarantine
kind, a reordered fit — fails loudly).

When numpy is not installed the comparison tests skip: there is only
one backend to run.  The forced-Python test still runs everywhere, so
the no-numpy CI leg exercises this module meaningfully.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.report import analyze_trace
from repro.fuzz import iter_plans, run_scenario
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.trace import columns as trace_columns

requires_numpy = pytest.mark.skipif(
    not trace_columns.numpy_available(),
    reason="numpy not installed; only the pure-Python backend exists")

GOLDEN_CASES = [
    ("reno", "wan", 20480, 0),
    ("tahoe", "wan-lossy", 20480, 1),
    ("net3", "lan", 10240, 0),
]


def on_backend(backend, function):
    """Run *function* with the trace backend forced to *backend*."""
    trace_columns.set_backend(backend)
    try:
        assert trace_columns.active_backend() == backend
        return function()
    finally:
        trace_columns.set_backend(None)


def report_dict(label, scenario, size, seed, identify):
    """Build the transfer and analyze it under the current backend.

    The transfer is rebuilt from scratch so pass-one, calibration and
    identification all run on columns produced by the backend under
    test rather than on a cached view.
    """
    behavior = get_behavior(label)
    transfer = traced_transfer(behavior, scenario, data_size=size,
                               seed=seed)
    report = analyze_trace(transfer.sender_trace, behavior,
                           peer_trace=transfer.receiver_trace,
                           identify=identify)
    return json.dumps(report.to_dict(), sort_keys=True)


@requires_numpy
@pytest.mark.parametrize("case", GOLDEN_CASES,
                         ids=["-".join(str(part) for part in c)
                              for c in GOLDEN_CASES])
def test_golden_trace_reports_identical(case):
    identify = case[0] == "reno"  # one full-identification case is enough
    python = on_backend("python", lambda: report_dict(*case, identify))
    numpy = on_backend("numpy", lambda: report_dict(*case, identify))
    assert python == numpy


@requires_numpy
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_random_transfer_reports_identical(seed):
    case = ("reno", "wan-lossy", 10240, seed)
    python = on_backend("python", lambda: report_dict(*case, False))
    numpy = on_backend("numpy", lambda: report_dict(*case, False))
    assert python == numpy


@requires_numpy
def test_fuzz_scenarios_identical():
    """Adversarial inputs (incl. quarantined:<kind> outcomes) agree."""

    def sweep():
        results = []
        for plan in iter_plans(base_seed=1789, count=12):
            outcome = run_scenario(plan)
            results.append((outcome.outcome, outcome.detail,
                            outcome.truth_key,
                            outcome.truth_implementation))
        return results

    python = on_backend("python", sweep)
    numpy = on_backend("numpy", sweep)
    assert python == numpy


def test_forced_python_backend_analyzes():
    """The pure-Python backend stands alone (numpy-free environments)."""
    payload = on_backend("python",
                         lambda: report_dict("reno", "wan", 20480, 0, True))
    parsed = json.loads(payload)
    assert "calibration" in parsed and "identification" in parsed


@requires_numpy
def test_backends_actually_differ():
    """Guard: the comparison above compares two distinct code paths."""
    transfer = traced_transfer(get_behavior("reno"), "lan",
                               data_size=4096, seed=0)
    trace = transfer.sender_trace
    vector = on_backend("numpy", lambda: trace.columns().is_vector)
    scalar = on_backend("python", lambda: trace.columns().is_vector)
    assert vector and not scalar
