"""Receiver-policy identification and active probing."""

import pytest

from repro.core.fit import identify_receiver, score_receiver_policy
from repro.core.receiver.analyzer import analyze_receiver
from repro.harness.probing import Arrival, drive_receiver, probe_hole_fill
from repro.packets import SYN
from repro.tcp.catalog import get_behavior

from tests.conftest import cached_transfer


def close_set(trace, candidates=None):
    fits = identify_receiver(
        trace, candidates and {label: get_behavior(label)
                               for label in candidates})
    return {f.implementation for f in fits if f.category == "close"}


class TestReceiverFitDefaults:
    def test_inconsistencies_default_to_empty_list(self):
        from repro.core.fit import ReceiverFit
        fit = ReceiverFit("reno", "close")
        assert fit.inconsistencies == []

    def test_default_lists_are_isolated_between_instances(self):
        from repro.core.fit import ReceiverFit
        first = ReceiverFit("reno", "close")
        second = ReceiverFit("tahoe", "close")
        first.inconsistencies.append("late acks")
        assert second.inconsistencies == []


class TestPassiveIdentification:
    def test_heartbeat_family_on_bsd_trace(self):
        close = close_set(cached_transfer("reno").receiver_trace)
        assert "reno" in close
        assert "linux-1.0" not in close
        assert "solaris-2.4" not in close

    def test_every_packet_family_on_linux_trace(self):
        close = close_set(cached_transfer("linux-1.0").receiver_trace)
        assert "linux-1.0" in close
        assert close <= {"linux-1.0", "linux-2.0.30", "trumpet-2.0b"}

    def test_interval_family_on_slow_link_solaris_trace(self):
        transfer = cached_transfer("solaris-2.4", "modem-56k",
                                   data_size=20480)
        close = close_set(transfer.receiver_trace)
        assert close <= {"solaris-2.3", "solaris-2.4"}
        assert "solaris-2.4" in close

    def test_stretch_offender_unique(self):
        close = close_set(cached_transfer("osf1-1.3a").receiver_trace)
        assert close == {"osf1-1.3a"}

    def test_scoring_explains_rejections(self):
        trace = cached_transfer("linux-1.0").receiver_trace
        analysis = analyze_receiver(trace, get_behavior("reno"), "reno")
        fit = score_receiver_policy(analysis, get_behavior("reno"))
        assert fit.category != "close"
        assert fit.inconsistencies


class TestActiveProbing:
    def test_driver_produces_connection_trace(self):
        trace = probe_hole_fill(get_behavior("reno"))
        assert any(r.is_syn for r in trace)
        assert len(trace.acks()) >= 3

    def test_probe_splits_solaris_23_from_24(self):
        """The §2 combination: a stimulus passive traces lack."""
        for truth in ("solaris-2.3", "solaris-2.4"):
            trace = probe_hole_fill(get_behavior(truth))
            fits = identify_receiver(
                trace, {label: get_behavior(label)
                        for label in ("solaris-2.3", "solaris-2.4")})
            ranking = {f.implementation: f.category for f in fits}
            assert ranking[truth] == "close"
            other = ("solaris-2.4" if truth == "solaris-2.3"
                     else "solaris-2.3")
            assert ranking[other] != "close"

    def test_custom_script(self):
        trace = drive_receiver(get_behavior("linux-1.0"), [
            Arrival(0.0, seq=0, flags=SYN, mss_option=512),
            Arrival(0.1, seq=1, payload=512),
            Arrival(0.2, seq=513, payload=512),
        ])
        # every-packet acker: one ack per data arrival (plus handshake)
        data_acks = [r for r in trace.acks() if r.ack > 1]
        assert len(data_acks) == 2

    def test_probe_trace_vantage_is_receiver(self):
        from repro.core.vantage import infer_vantage
        trace = probe_hole_fill(get_behavior("reno"))
        assert infer_vantage(trace) == "receiver"
