"""The identification engine's one promise: same answer, less work.

The engine (repro.core.engine) shares pass-one facts, replays each
behavior-equivalence class once, prefilters statically impossible
candidates, and aborts hopeless replays — every trick is only
admissible because the resulting ranking is identical to the
exhaustive oracle's.  These tests pin that equivalence across the
catalog and the scenario corpus, plus the engine-specific behaviors
(abort marking, pruning, determinism) and the slots regression for
the hot dataclasses.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.engine import (
    IdentificationEngine,
    prefilter_reason,
    receiver_signature,
    sender_signature,
)
from repro.core.fit import (
    SCORE_SATURATION,
    identify_implementation,
    identify_receiver,
)
from repro.core.report import analyze_trace
from repro.core.sender.analyzer import extract_pass_one
from repro.tcp.catalog import CATALOG, get_behavior
from repro.trace.record import TraceRecord

from tests.conftest import cached_transfer


def ranking(fits):
    return [(fit.implementation, fit.category) for fit in fits]


SENDER_CASES = [
    ("reno", "wan"),
    ("reno", "wan-lossy"),
    ("tahoe", "wan-lossy"),
    ("linux-1.0", "wan-lossy"),
    ("linux-2.0.30", "wan"),
    ("solaris-2.4", "transatlantic"),
    ("windows-95", "wan"),
    ("irix-6.2", "wan-lossy"),
]


class TestSenderEquivalence:
    @pytest.mark.parametrize("implementation,scenario", SENDER_CASES)
    def test_ranking_and_categories_match_exhaustive(
            self, implementation, scenario):
        trace = cached_transfer(implementation, scenario).sender_trace
        exhaustive = identify_implementation(trace)
        engine = IdentificationEngine().identify_sender(trace)
        assert ranking(engine.fits) == ranking(exhaustive.fits)

    @pytest.mark.parametrize("implementation,scenario", SENDER_CASES)
    def test_completed_scores_match_exhaustive(self, implementation,
                                               scenario):
        trace = cached_transfer(implementation, scenario).sender_trace
        exhaustive_scores = {fit.implementation: fit.score
                             for fit in identify_implementation(trace).fits}
        for fit in IdentificationEngine().identify_sender(trace).fits:
            if fit.aborted or fit.pruned_reason:
                # Cut-short scores are lower bounds, already past the
                # point where the rank key saturates.
                assert fit.score >= SCORE_SATURATION or fit.analysis is None
            else:
                assert fit.score == exhaustive_scores[fit.implementation]

    def test_engine_switches_do_not_change_the_ranking(self):
        trace = cached_transfer("reno", "wan-lossy").sender_trace
        expected = ranking(identify_implementation(trace).fits)
        for switches in ({"prefilter": False}, {"early_abort": False},
                         {"share_replays": False}):
            engine = IdentificationEngine(**switches)
            assert ranking(engine.identify_sender(trace).fits) == expected

    def test_unusable_trace_ranks_everything_unusable(self):
        transfer = cached_transfer("reno", "wan")
        records = [r for r in transfer.sender_trace if not r.is_syn]
        trace = dataclasses.replace(transfer.sender_trace, records=records)
        report = IdentificationEngine().identify_sender(trace)
        assert all(fit.category == "unusable" for fit in report.fits)
        assert ranking(report.fits) == ranking(
            identify_implementation(trace).fits)


class TestReceiverEquivalence:
    @pytest.mark.parametrize("implementation,scenario", [
        ("reno", "wan-lossy"),
        ("solaris-2.3", "wan-lossy"),
        ("solaris-2.4", "wan"),
        ("windows-NT", "wan-lossy"),
    ])
    def test_fits_match_exhaustive_exactly(self, implementation, scenario):
        trace = cached_transfer(implementation, scenario).receiver_trace
        exhaustive = identify_receiver(trace)
        engine = IdentificationEngine().identify_receiver(trace)
        assert [(f.implementation, f.category, f.score, f.inconsistencies)
                for f in engine] \
            == [(f.implementation, f.category, f.score, f.inconsistencies)
                for f in exhaustive]

    def test_receiver_classes_collapse_the_catalog(self):
        signatures = {receiver_signature(b) for b in CATALOG.values()}
        assert len(signatures) < len(CATALOG) // 2


class TestEarlyAbort:
    def test_hopeless_candidates_are_marked_aborted(self):
        trace = cached_transfer("reno", "wan-lossy").sender_trace
        report = IdentificationEngine().identify_sender(trace)
        aborted = [fit for fit in report.fits if fit.aborted]
        assert aborted, "wan-lossy reno should make some candidates abort"
        for fit in aborted:
            assert fit.category == "incorrect"
            assert fit.score >= SCORE_SATURATION
            assert fit.analysis is not None
            assert fit.analysis.replay_aborted
            payload = fit.to_dict()
            assert payload["aborted"] is True
            assert payload["score_lower_bound"] == fit.score

    def test_abort_disabled_leaves_no_marks(self):
        trace = cached_transfer("reno", "wan-lossy").sender_trace
        report = IdentificationEngine(
            early_abort=False).identify_sender(trace)
        assert not any(fit.aborted for fit in report.fits)


class TestPrefilter:
    def test_mss_prefilter_rule(self):
        facts = extract_pass_one(
            cached_transfer("reno", "wan").sender_trace).facts
        assert facts.offered_mss_option
        reno = get_behavior("reno")
        assert prefilter_reason(facts, reno) == ""
        no_mss = dataclasses.replace(reno, offers_mss_option=False)
        assert "MSS option" in prefilter_reason(facts, no_mss)

    def test_pruned_candidate_leaves_survivors_unchanged(self):
        trace = cached_transfer("reno", "wan").sender_trace
        reno = get_behavior("reno")
        candidates = {
            "reno": reno,
            "tahoe": get_behavior("tahoe"),
            "mss-less": dataclasses.replace(reno, offers_mss_option=False),
        }
        report = IdentificationEngine(candidates).identify_sender(trace)
        by_name = {fit.implementation: fit for fit in report.fits}
        pruned = by_name["mss-less"]
        assert pruned.pruned_reason
        assert pruned.category == "incorrect"
        assert pruned.analysis is None
        assert pruned.to_dict()["pruned_reason"] == pruned.pruned_reason
        # Survivors carry exactly the categories and scores the
        # exhaustive path assigns them.
        surviving = {n: b for n, b in candidates.items() if n != "mss-less"}
        exhaustive = identify_implementation(trace, surviving)
        for fit in exhaustive.fits:
            assert by_name[fit.implementation].category == fit.category
            assert by_name[fit.implementation].score == fit.score

    def test_prefilters_never_fire_on_the_catalog(self):
        # The shipped rules are definitional; every real catalog entry
        # offers an MSS option and tolerates a handful of SYNs, so on
        # catalog candidates the engine must rely on replay alone.
        facts = extract_pass_one(
            cached_transfer("reno", "wan").sender_trace).facts
        assert all(prefilter_reason(facts, behavior) == ""
                   for behavior in CATALOG.values())


class TestDeterminism:
    def test_equal_scores_rank_by_name_in_both_paths(self):
        trace = cached_transfer("reno", "wan").sender_trace
        reno = get_behavior("reno")
        candidates = {"zz-twin": reno, "aa-twin": reno}
        exhaustive = identify_implementation(trace, candidates)
        engine = IdentificationEngine(candidates).identify_sender(trace)
        assert [f.implementation for f in exhaustive.fits] \
            == ["aa-twin", "zz-twin"]
        assert ranking(engine.fits) == ranking(exhaustive.fits)
        assert engine.fits[0].score == engine.fits[1].score

    def test_shared_replays_relabel_for_every_member(self):
        trace = cached_transfer("tahoe", "wan").sender_trace
        engine = IdentificationEngine()
        groups = {tuple(g) for g in engine._sender_groups if len(g) > 1}
        assert ("sunos-4.1.3", "tahoe") in groups
        report = engine.identify_sender(trace)
        for fit in report.fits:
            if fit.analysis is not None:
                assert fit.analysis.implementation == fit.implementation

    def test_sender_classes_are_nontrivial(self):
        signatures = {sender_signature(b) for b in CATALOG.values()}
        assert len(signatures) < len(CATALOG)


class TestSharedPassOne:
    def test_analyze_trace_extracts_facts_exactly_once(self, monkeypatch):
        import repro.core.report as report_module
        import repro.core.sender.analyzer as analyzer_module
        calls = []
        real = analyzer_module.extract_pass_one

        def counting(trace):
            calls.append(trace)
            return real(trace)

        monkeypatch.setattr(analyzer_module, "extract_pass_one", counting)
        monkeypatch.setattr(report_module, "extract_pass_one", counting)
        trace = cached_transfer("reno", "wan").sender_trace
        report = analyze_trace(trace, get_behavior("reno"), identify=True)
        assert report.sender is not None
        assert report.identification is not None
        assert len(calls) == 1

    def test_analyze_trace_uses_the_engine_path(self, monkeypatch):
        import repro.core.fit as fit_module

        def forbidden(*args, **kwargs):
            raise AssertionError("exhaustive path used for identification")

        monkeypatch.setattr(fit_module, "identify_implementation", forbidden)
        monkeypatch.setattr(fit_module, "identify_receiver", forbidden)
        transfer = cached_transfer("reno", "wan")
        sender = analyze_trace(transfer.sender_trace, identify=True)
        assert sender.identification is not None
        assert sender.identification.best.category == "close"
        receiver = analyze_trace(transfer.receiver_trace, identify=True)
        assert receiver.receiver_identification is not None

    def test_report_matches_pre_engine_shape(self):
        trace = cached_transfer("reno", "wan").sender_trace
        report = analyze_trace(trace, identify=True)
        payload = report.to_dict()
        assert payload["identification"]["best"] == \
            identify_implementation(trace).best.implementation


class TestSlots:
    def test_trace_record_rejects_stray_attributes(self):
        record = cached_transfer("reno", "wan").sender_trace.records[0]
        assert not hasattr(record, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            object.__setattr__(record, "stray", 1)

    def test_flow_rejects_stray_attributes(self):
        from repro.stream.flowtable import ConnectionKey, Flow
        endpoints = cached_transfer("reno", "wan").sender_trace.records[0]
        key = ConnectionKey.of(endpoints.src, endpoints.dst)
        flow = Flow(key=key, index=0)
        assert not hasattr(flow, "__dict__")
        with pytest.raises(AttributeError):
            flow.stray = 1

    def test_classification_is_slotted(self):
        from repro.core.sender.analyzer import Classification
        record = cached_transfer("reno", "wan").sender_trace.records[0]
        classification = Classification(record, "new")
        assert not hasattr(classification, "__dict__")

    def test_slotted_records_still_pickle(self):
        # Batch workers ship traces across process boundaries.
        import pickle
        record = cached_transfer("reno", "wan").sender_trace.records[0]
        assert pickle.loads(pickle.dumps(record)) == record
