"""Receiver analysis: obligations, ack classes, corruption (§7, §9)."""

import pytest

from repro.core.receiver.analyzer import analyze_receiver
from repro.core.receiver.obligations import AckObligation, ObligationTracker
from repro.tcp.catalog import get_behavior

from tests.conftest import cached_transfer


class TestObligationTracker:
    def test_discharge_clears_pending(self):
        tracker = ObligationTracker()
        tracker.incur(AckObligation(1.0, False, "in_sequence", 512))
        discharged = tracker.discharge(1.1)
        assert len(discharged) == 1
        assert not tracker.pending

    def test_oldest_pending_time(self):
        tracker = ObligationTracker()
        tracker.incur(AckObligation(1.0, False, "in_sequence", 512))
        tracker.incur(AckObligation(2.0, True, "out_of_sequence", 512))
        assert tracker.oldest_pending_time() == 1.0

    def test_expire_moves_stale_optional(self):
        tracker = ObligationTracker()
        tracker.incur(AckObligation(0.0, False, "in_sequence", 512))
        tracker.expire(1.0, mandatory_deadline=0.05)
        assert tracker.missed and not tracker.pending

    def test_expire_mandatory_uses_short_deadline(self):
        tracker = ObligationTracker()
        tracker.incur(AckObligation(0.0, True, "out_of_sequence", 512))
        tracker.expire(0.1, mandatory_deadline=0.05)
        assert tracker.missed

    def test_fresh_obligations_not_expired(self):
        tracker = ObligationTracker()
        tracker.incur(AckObligation(0.0, False, "in_sequence", 512))
        tracker.expire(0.1, mandatory_deadline=0.05)
        assert tracker.pending and not tracker.missed


class TestAckClassification:
    def test_bsd_mostly_normal_acks(self):
        analysis = analyze_receiver(cached_transfer("reno").receiver_trace,
                                    get_behavior("reno"))
        counts = analysis.counts_by_kind()
        assert counts.get("normal", 0) > counts.get("delayed", 0)
        assert counts.get("stretch", 0) == 0

    def test_linux_all_delayed_by_definition(self):
        """§9.1: Linux 1.0 acks every packet, so by tcpanaly's
        definition all of its acks are delayed acks."""
        analysis = analyze_receiver(
            cached_transfer("linux-1.0").receiver_trace,
            get_behavior("linux-1.0"))
        counts = analysis.counts_by_kind()
        assert counts.get("normal", 0) == 0
        assert counts.get("delayed", 0) > 90

    def test_linux_acks_within_a_millisecond(self):
        analysis = analyze_receiver(
            cached_transfer("linux-1.0").receiver_trace,
            get_behavior("linux-1.0"))
        delays = analysis.delays_for("delayed")
        assert max(delays) < 0.002

    def test_bsd_delayed_acks_bounded_by_heartbeat(self):
        analysis = analyze_receiver(cached_transfer("reno").receiver_trace,
                                    get_behavior("reno"))
        delays = analysis.delays_for("delayed")
        assert all(d <= 0.210 for d in delays)

    def test_solaris_delayed_acks_at_50ms(self):
        analysis = analyze_receiver(
            cached_transfer("solaris-2.4").receiver_trace,
            get_behavior("solaris-2.4"))
        delays = analysis.delays_for("delayed")
        assert delays and all(0.045 <= d <= 0.060 for d in delays)

    def test_solaris_slow_link_every_ack_delayed(self):
        """§9.1: below ~20 KB/s a 50 ms timer acks every packet."""
        analysis = analyze_receiver(
            cached_transfer("solaris-2.4", "modem-56k",
                            data_size=20480).receiver_trace,
            get_behavior("solaris-2.4"))
        counts = analysis.counts_by_kind()
        assert counts.get("delayed", 0) > 0.9 * (
            counts.get("delayed", 0) + counts.get("normal", 0))

    def test_no_gratuitous_acks_on_clean_traces(self):
        for implementation in ("reno", "linux-1.0", "solaris-2.4"):
            analysis = analyze_receiver(
                cached_transfer(implementation).receiver_trace,
                get_behavior(implementation))
            assert analysis.gratuitous == []

    def test_no_500ms_violations_for_compliant_stacks(self):
        analysis = analyze_receiver(cached_transfer("reno").receiver_trace,
                                    get_behavior("reno"))
        assert analysis.delay_ceiling_violations == []

    def test_dup_acks_classified_on_loss(self):
        analysis = analyze_receiver(
            cached_transfer("reno", "wan-lossy", seed=3).receiver_trace,
            get_behavior("reno"))
        assert analysis.counts_by_kind().get("dup", 0) >= 2


class TestCorruption:
    def test_verified_corruption_with_full_packets(self):
        transfer = cached_transfer("reno", "lossy-corrupting", seed=1)
        truth = sum(1 for r in transfer.receiver_trace if r.corrupted)
        analysis = analyze_receiver(transfer.receiver_trace,
                                    get_behavior("reno"))
        assert len(analysis.verified_corrupt) == truth > 0

    def test_inferred_corruption_headers_only(self):
        """§7: with only headers, infer discards from unacknowledged
        arrivals that get retransmitted."""
        transfer = cached_transfer("reno", "lossy-corrupting", seed=1)
        truth = {r.packet_id for r in transfer.receiver_trace if r.corrupted}
        analysis = analyze_receiver(transfer.receiver_trace,
                                    get_behavior("reno"), headers_only=True)
        inferred = {r.packet_id for r in analysis.inferred_corrupt}
        # every true corruption found, no false positives
        assert inferred == truth

    def test_inference_across_catalog(self):
        for implementation in ("reno", "solaris-2.4", "sunos-4.1.3"):
            transfer = cached_transfer(implementation, "lossy-corrupting",
                                       seed=2)
            truth = {r.packet_id for r in transfer.receiver_trace
                     if r.corrupted}
            analysis = analyze_receiver(transfer.receiver_trace,
                                        get_behavior(implementation),
                                        headers_only=True)
            inferred = {r.packet_id for r in analysis.inferred_corrupt}
            assert truth <= inferred  # no corrupted arrival escapes
            extras = inferred - truth
            assert len(extras) <= max(2, len(truth))

    def test_clean_trace_no_corruption(self):
        analysis = analyze_receiver(cached_transfer("reno").receiver_trace,
                                    get_behavior("reno"), headers_only=True)
        assert analysis.inferred_corrupt == []


class TestErrors:
    def test_missing_syn_raises(self):
        from repro.trace.record import Trace
        trace = cached_transfer("reno").receiver_trace
        headless = Trace(records=[r for r in trace if not r.is_syn])
        with pytest.raises(ValueError):
            analyze_receiver(headless, get_behavior("reno"))
