"""Each §3.1.1 drop check against a hand-crafted trace.

Crafted in the tcpdump text format (also exercising the parser) so
each check's trigger condition is explicit and minimal.
"""

import pytest

from repro.core.calibrate.drops import (
    check_ack_for_unseen_data,
    check_ack_regression,
    check_dup_acks_without_cause,
    check_retransmission_of_unseen,
    check_sequence_gap,
    check_stretch_ack_gap,
    run_drop_checks,
)
from repro.tcp.catalog import get_behavior
from repro.trace.text import parse_trace

SENDER_PREFIX = """\
0.000000 sender.1024 > receiver.9000: S 0:1(0) win 65535 <mss 512>
0.070000 receiver.9000 > sender.1024: S. 0:1(0) ack 1 win 65535 <mss 512>
0.070500 sender.1024 > receiver.9000: . 1:1(0) ack 1 win 65535
"""


def sender_trace(body: str):
    trace = parse_trace(SENDER_PREFIX + body, vantage="sender")
    return trace, trace.primary_flow()


def receiver_trace(body: str):
    trace = parse_trace(SENDER_PREFIX + body, vantage="receiver")
    return trace, trace.primary_flow()


class TestAckForUnseenData:
    def test_fires_when_ack_exceeds_recorded_sends(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        evidence = check_ack_for_unseen_data(trace, flow)
        assert len(evidence) == 1
        assert "1025" in evidence[0].detail

    def test_quiet_when_consistent(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        assert check_ack_for_unseen_data(trace, flow) == []

    def test_reports_each_gap_once(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n"
            "0.160000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        assert len(check_ack_for_unseen_data(trace, flow)) == 1


class TestSequenceGap:
    def test_fires_on_skipped_sequence_space(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n")
        evidence = check_sequence_gap(trace, flow)
        assert len(evidence) == 1
        assert "512 bytes unrecorded" in evidence[0].detail

    def test_quiet_on_contiguous_sends(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n")
        assert check_sequence_gap(trace, flow) == []

    def test_quiet_on_retransmission(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.500000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n")
        assert check_sequence_gap(trace, flow) == []


class TestAckRegression:
    def test_fires_when_acks_go_backwards(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n"
            "0.110000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        evidence = check_ack_regression(trace, flow)
        assert len(evidence) == 1

    def test_quiet_on_monotone_acks(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.110000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        assert check_ack_regression(trace, flow) == []


class TestDupAcksWithoutCause:
    def test_fires_on_unprovoked_dup(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.200000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        evidence = check_dup_acks_without_cause(trace, flow)
        assert len(evidence) == 1

    def test_quiet_when_arrival_provokes(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.150000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n"
            "0.151000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        assert check_dup_acks_without_cause(trace, flow) == []

    def test_fin_counts_as_provocation(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.150000 sender.1024 > receiver.9000: F. 1025:1026(0) ack 1 win 65535\n"
            "0.151000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        assert check_dup_acks_without_cause(trace, flow) == []


class TestStretchAckGap:
    def test_fires_when_ack_covers_unseen_arrivals(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        evidence = check_stretch_ack_gap(trace, flow)
        assert len(evidence) == 1

    def test_out_of_order_arrivals_assemble(self):
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.100000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        assert check_stretch_ack_gap(trace, flow) == []


class TestRetransmissionOfUnseen:
    def test_fires_when_original_missing(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.000000 sender.1024 > receiver.9000: . 257:769(512) ack 1 win 65535\n")
        evidence = check_retransmission_of_unseen(trace, flow)
        assert len(evidence) == 1

    def test_quiet_for_normal_retransmission(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.000000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n")
        assert check_retransmission_of_unseen(trace, flow) == []


class TestVantageGating:
    def test_sender_checks_only_at_sender(self):
        # A receiver-side trace with a data gap: a NETWORK drop, not a
        # filter drop — the gap check must not run there.
        trace, flow = receiver_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n"
            "0.073000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n")
        evidence = run_drop_checks(trace, get_behavior("reno"),
                                   vantage="receiver")
        assert all(e.check != "sequence_gap" for e in evidence)

    def test_explicit_vantage_overrides_metadata(self):
        trace, flow = sender_trace(
            "0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535\n"
            "0.072000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n")
        as_sender = run_drop_checks(trace, vantage="sender")
        as_receiver = run_drop_checks(trace, vantage="receiver")
        assert any(e.check == "sequence_gap" for e in as_sender)
        assert all(e.check != "sequence_gap" for e in as_receiver)
