"""The combined tcpanaly report."""

from repro.core.report import analyze_trace
from repro.tcp.catalog import get_behavior

from tests.conftest import cached_transfer


class TestAnalyzeTrace:
    def test_sender_report_includes_sender_analysis(self):
        report = analyze_trace(cached_transfer("reno").sender_trace,
                               get_behavior("reno"))
        assert report.vantage == "sender"
        assert report.sender is not None
        assert report.receiver is None

    def test_receiver_report_includes_receiver_analysis(self):
        report = analyze_trace(cached_transfer("reno").receiver_trace,
                               get_behavior("reno"))
        assert report.vantage == "receiver"
        assert report.receiver is not None
        assert report.sender is None

    def test_identification_optional(self):
        report = analyze_trace(cached_transfer("reno").sender_trace,
                               get_behavior("reno"), identify=True)
        assert report.identification is not None

    def test_pair_analysis_included(self):
        transfer = cached_transfer("reno")
        report = analyze_trace(transfer.sender_trace, get_behavior("reno"),
                               peer_trace=transfer.receiver_trace)
        assert report.calibration.pair_analysis is not None

    def test_render_sections(self):
        transfer = cached_transfer("reno")
        report = analyze_trace(transfer.sender_trace, get_behavior("reno"),
                               identify=True)
        text = report.render()
        assert "measurement calibration" in text
        assert "sender behavior" in text
        assert "implementation identification" in text

    def test_render_notes_resequencing(self):
        from repro.capture.errors import ResequencingInjector
        from repro.capture.filter import PacketFilter
        from repro.harness.scenarios import traced_transfer
        packet_filter = PacketFilter(
            vantage="sender", resequencing=ResequencingInjector(seed=1))
        transfer = traced_transfer(get_behavior("solaris-2.4"), "wan",
                                   data_size=30720,
                                   sender_filter=packet_filter)
        report = analyze_trace(transfer.sender_trace,
                               get_behavior("solaris-2.4"))
        assert "untrustworthy" in report.render()

    def test_behaviorless_report_still_calibrates(self):
        report = analyze_trace(cached_transfer("reno").sender_trace)
        assert report.sender is None
        assert report.calibration is not None
