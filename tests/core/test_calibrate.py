"""Calibration battery (§3): detection with zero false positives."""

import pytest

from repro.capture.clock import SkewedClock, SteppingClock
from repro.capture.errors import (
    DropInjector,
    DuplicationInjector,
    ResequencingInjector,
)
from repro.capture.filter import PacketFilter
from repro.core.calibrate import calibrate_trace
from repro.core.calibrate.additions import (
    detect_duplicates,
    remove_duplicates,
    slope_analysis,
)
from repro.core.calibrate.timing import detect_time_travel, pair_records
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbyte

from tests.conftest import cached_transfer


def injected_transfer(implementation="reno", scenario="wan", **filter_kwargs):
    packet_filter = PacketFilter(vantage="sender", **filter_kwargs)
    return traced_transfer(get_behavior(implementation), scenario,
                           data_size=kbyte(50),
                           sender_filter=packet_filter), packet_filter


class TestCleanTraces:
    """No false positives: clean filters yield clean reports."""

    @pytest.mark.parametrize("implementation,scenario", [
        ("reno", "wan"), ("reno", "wan-lossy"), ("tahoe", "wan-lossy"),
        ("linux-1.0", "wan-lossy"), ("solaris-2.4", "transatlantic"),
        ("sunos-4.1.3", "lan"), ("trumpet-2.0b", "wan-lossy"),
    ])
    def test_sender_side_clean(self, implementation, scenario):
        transfer = cached_transfer(implementation, scenario, seed=1)
        report = calibrate_trace(transfer.sender_trace,
                                 get_behavior(implementation),
                                 peer_trace=transfer.receiver_trace)
        assert report.clean, report.summary()

    @pytest.mark.parametrize("implementation,scenario", [
        ("reno", "wan-lossy"), ("linux-1.0", "wan-lossy"),
        ("solaris-2.4", "wan-lossy"),
    ])
    def test_receiver_side_clean(self, implementation, scenario):
        transfer = cached_transfer(implementation, scenario, seed=1)
        report = calibrate_trace(transfer.receiver_trace,
                                 get_behavior(implementation))
        assert report.clean, report.summary()


class TestDropDetection:
    def test_sender_side_drops_detected(self):
        transfer, packet_filter = injected_transfer(
            drops=DropInjector(rate=0.05, seed=4, report_style="zero"))
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"))
        assert packet_filter.drops.true_drops > 0
        assert report.drop_evidence
        assert report.reported_drops == 0     # the filter lied

    def test_untrustworthy_reports_documented(self):
        transfer, packet_filter = injected_transfer(
            drops=DropInjector(rate=0.05, seed=4, report_style="stale"))
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"))
        assert report.reported_drops == 62    # the stale IRIX count

    def test_true_network_drops_not_misflagged(self):
        """The crucial §3.1.1 discipline: never mistake a genuine
        network drop for a filter drop."""
        transfer = cached_transfer("reno", "wan-lossy", seed=3)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"))
        assert report.drop_evidence == []

    def test_receiver_vantage_drop_checks(self):
        packet_filter = PacketFilter(
            vantage="receiver",
            drops=DropInjector(rate=0.07, seed=2, report_style="none"))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(50),
                                   receiver_filter=packet_filter)
        report = calibrate_trace(transfer.receiver_trace,
                                 get_behavior("reno"))
        assert packet_filter.drops.true_drops > 0
        assert report.drop_evidence


class TestAdditionDetection:
    def test_duplication_detected_and_removed(self):
        transfer, _ = injected_transfer(scenario="lan",
                                        duplication=DuplicationInjector())
        trace = transfer.sender_trace
        duplicates = detect_duplicates(trace)
        flow = trace.primary_flow()
        outbound = [r for r in trace if r.flow == flow]
        assert len(duplicates) > len(outbound) // 3
        cleaned = remove_duplicates(trace, duplicates)
        assert len(cleaned) == len(trace) - len(duplicates)
        assert not detect_duplicates(cleaned)

    def test_removal_keeps_earlier_copy(self):
        transfer, _ = injected_transfer(scenario="lan",
                                        duplication=DuplicationInjector())
        trace = transfer.sender_trace
        duplicates = detect_duplicates(trace)
        cleaned = remove_duplicates(trace, duplicates)
        kept = {id(r) for r in cleaned.records}
        for event in duplicates:
            assert id(event.first) in kept
            assert id(event.second) not in kept

    def test_slope_analysis_shows_two_rates(self):
        """Figure 1: OS-rate copies ~2.5 MB/s, wire copies ~1 MB/s."""
        transfer, _ = injected_transfer(
            scenario="lan",
            duplication=DuplicationInjector(os_rate=2.6e6, wire_rate=1.0e6))
        slopes = slope_analysis(transfer.sender_trace)
        assert slopes is not None
        assert slopes.first_copy_rate > 1.8 * slopes.second_copy_rate

    def test_cleaned_trace_analyzes_without_violations(self):
        transfer, _ = injected_transfer(scenario="lan",
                                        duplication=DuplicationInjector())
        from repro.core.sender.analyzer import analyze_sender
        cleaned = remove_duplicates(transfer.sender_trace)
        analysis = analyze_sender(cleaned, get_behavior("reno"))
        assert analysis.violation_count == 0

    def test_isolated_pairs_left_alone(self):
        transfer = cached_transfer("linux-1.0", "wan-lossy", seed=2)
        report = calibrate_trace(transfer.receiver_trace,
                                 get_behavior("linux-1.0"))
        assert report.duplicates == []


class TestResequencingDetection:
    def test_solaris_filter_detected(self):
        transfer, _ = injected_transfer(
            implementation="solaris-2.4",
            resequencing=ResequencingInjector(seed=1))
        report = calibrate_trace(transfer.sender_trace,
                                 get_behavior("solaris-2.4"))
        assert len(report.resequencing) > 3
        situations = {e.situation for e in report.resequencing}
        assert "window_then_ack" in situations or "lull_then_ack" in situations

    def test_clean_filter_no_resequencing(self):
        transfer = cached_transfer("solaris-2.4", "wan")
        report = calibrate_trace(transfer.sender_trace,
                                 get_behavior("solaris-2.4"))
        assert report.resequencing == []

    def test_fraction_of_affected_traces(self):
        """§3.1.3: 'about 20% of Solaris self-traces' are plagued —
        with jitter, some traces show inversions, others do not."""
        affected = 0
        for seed in range(6):
            packet_filter = PacketFilter(
                vantage="sender",
                resequencing=ResequencingInjector(seed=seed, jitter=0.004))
            transfer = traced_transfer(get_behavior("solaris-2.4"), "wan",
                                       data_size=kbyte(30),
                                       sender_filter=packet_filter)
            report = calibrate_trace(transfer.sender_trace,
                                     get_behavior("solaris-2.4"))
            if report.resequencing:
                affected += 1
        assert 1 <= affected <= 6


class TestTimingChecks:
    def test_time_travel_detected(self):
        transfer, _ = injected_transfer(
            clock=SteppingClock(rate=1.0002, steps=[(0.5, -0.05)]))
        events = detect_time_travel(transfer.sender_trace)
        assert len(events) >= 1
        assert events[0].magnitude > 0

    def test_no_time_travel_on_monotone_clock(self):
        transfer = cached_transfer("reno")
        assert detect_time_travel(transfer.sender_trace) == []

    def test_pair_records_matches_common_packets(self):
        transfer = cached_transfer("reno")
        pairs = pair_records(transfer.sender_trace, transfer.receiver_trace)
        assert len(pairs) == len(transfer.sender_trace)

    def test_pair_records_handles_drops(self):
        transfer = cached_transfer("reno", "wan-lossy", seed=3)
        pairs = pair_records(transfer.sender_trace, transfer.receiver_trace)
        assert len(pairs) < len(transfer.sender_trace)

    def test_skew_detected_and_estimated(self):
        packet_filter = PacketFilter(vantage="sender",
                                     clock=SkewedClock(rate=1.0005))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(100),
                                   sender_filter=packet_filter,
                                   sender_window=4096)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"),
                                 peer_trace=transfer.receiver_trace)
        analysis = report.pair_analysis
        assert analysis.skew_detected
        assert analysis.relative_skew_ppm == pytest.approx(-500, abs=100)

    def test_skew_detected_under_congestion(self):
        """The minimum-envelope de-noising: queueing in the data
        direction must not hide the clock drift."""
        packet_filter = PacketFilter(vantage="sender",
                                     clock=SkewedClock(rate=1.0008))
        transfer = traced_transfer(get_behavior("reno"), "modem-56k",
                                   data_size=65536,
                                   sender_filter=packet_filter)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"),
                                 peer_trace=transfer.receiver_trace)
        assert report.pair_analysis.skew_detected
        assert report.pair_analysis.relative_skew_ppm == pytest.approx(
            -800, rel=0.3)

    def test_no_skew_on_clean_pair(self):
        transfer = cached_transfer("reno", "wan-lossy", seed=9,
                                   data_size=kbyte(100))
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"),
                                 peer_trace=transfer.receiver_trace)
        assert not report.pair_analysis.skew_detected

    def test_step_adjustment_detected(self):
        packet_filter = PacketFilter(vantage="sender",
                                     clock=SteppingClock(steps=[(1.0, 0.5)]))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(100),
                                   sender_filter=packet_filter,
                                   sender_window=4096)
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"),
                                 peer_trace=transfer.receiver_trace)
        adjustments = report.pair_analysis.adjustments
        assert len(adjustments) == 1
        assert adjustments[0].magnitude == pytest.approx(-0.5, abs=0.05)

    def test_no_adjustments_on_clean_pair(self):
        transfer = cached_transfer("reno", "wan-lossy", seed=9,
                                   data_size=kbyte(100))
        report = calibrate_trace(transfer.sender_trace, get_behavior("reno"),
                                 peer_trace=transfer.receiver_trace)
        assert report.pair_analysis.adjustments == []
