"""WindowLedger and SenderModel unit behavior."""

import pytest

from repro.core.sender.windows import SenderModel, WindowLedger
from repro.packets import ACK, Endpoint
from repro.trace.record import TraceRecord
from repro.tcp.catalog import RENO, SOLARIS_23, TAHOE, get_behavior


def make_record(t, ack, window=65535, payload=0, seq=1):
    return TraceRecord(timestamp=t, src=Endpoint("receiver", 9000),
                       dst=Endpoint("sender", 1024), seq=seq, ack=ack,
                       flags=ACK, payload=payload, window=window)


def data_record(t, seq, payload=512):
    return TraceRecord(timestamp=t, src=Endpoint("sender", 1024),
                       dst=Endpoint("receiver", 9000), seq=seq, ack=1,
                       flags=ACK, payload=payload, window=65535)


def make_model(behavior=RENO, mss=512, offered_window=65535):
    return SenderModel(behavior, mss, iss=0, offered_mss=mss,
                       peer_offered_mss_option=True, start_time=0.0,
                       initial_offered_window=offered_window)


class TestWindowLedger:
    def test_initial_entry(self):
        ledger = WindowLedger(0.0, 1000)
        assert ledger.current_high == 1000
        assert ledger.permissible_since(500) == 0.0

    def test_advance_records_time(self):
        ledger = WindowLedger(0.0, 1000)
        ledger.advance(1.0, 2000)
        assert ledger.permissible_since(1500) == 1.0
        assert ledger.permissible_since(1000) == 0.0

    def test_advance_ignores_non_growth(self):
        ledger = WindowLedger(0.0, 1000)
        ledger.advance(1.0, 900)
        assert ledger.current_high == 1000

    def test_not_permitted_returns_none(self):
        ledger = WindowLedger(0.0, 1000)
        assert ledger.permissible_since(5000) is None

    def test_shrink_removes_entries(self):
        ledger = WindowLedger(0.0, 1000)
        ledger.advance(1.0, 2000)
        ledger.advance(2.0, 3000)
        ledger.shrink(1000)
        assert ledger.current_high == 1000
        assert ledger.permissible_since(1500) is None

    def test_shrink_between_entries_keeps_boundary(self):
        # The boundary stays permissible since the advance that crossed it.
        ledger = WindowLedger(0.0, 1000)
        ledger.advance(1.0, 3000)
        ledger.shrink(2000)
        assert ledger.current_high == 2000
        assert ledger.permissible_since(2000) == 1.0

    def test_regrow_after_shrink_uses_new_time(self):
        ledger = WindowLedger(0.0, 1000)
        ledger.advance(1.0, 3000)
        ledger.shrink(1000)
        ledger.advance(5.0, 2500)
        assert ledger.permissible_since(2000) == 5.0

    def test_shrink_below_first_entry(self):
        ledger = WindowLedger(0.0, 1000)
        ledger.shrink(400)
        assert ledger.current_high == 400
        assert ledger.permissible_since(400) == 0.0


class TestSenderModelAcks:
    def test_advance_grows_cwnd_in_slow_start(self):
        model = make_model()
        model.observe_send(data_record(0.1, 1), is_retransmission=False)
        before = model.cwnd
        model.process_ack(make_record(0.2, 513))
        assert model.cwnd == before + model.cwnd_mss
        assert model.snd_una == 513

    def test_duplicate_ack_counted(self):
        model = make_model()
        for i in range(3):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        assert model.process_ack(make_record(0.3, 513)) == "dup"
        assert model.dupacks == 1

    def test_window_update_not_a_dup(self):
        model = make_model()
        model.observe_send(data_record(0.1, 1), is_retransmission=False)
        result = model.process_ack(make_record(0.2, 1, window=32768))
        assert result == "other"
        assert model.dupacks == 0

    def test_three_dups_arm_fast_retransmit(self):
        model = make_model()
        for i in range(5):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        for i in range(3):
            model.process_ack(make_record(0.3 + i * 0.01, 513))
        assert model.expected_fast_rexmit
        assert model.in_fast_recovery          # Reno
        assert model.cwnd == model.ssthresh + 3 * model.cwnd_mss

    def test_tahoe_three_dups_collapse(self):
        model = make_model(TAHOE)
        for i in range(5):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        for i in range(3):
            model.process_ack(make_record(0.3 + i * 0.01, 513))
        assert model.expected_fast_rexmit
        assert not model.in_fast_recovery
        assert model.cwnd == model.cwnd_mss
        assert model.snd_nxt == model.snd_una

    def test_solaris_recovery_disabled_by_bug(self):
        model = make_model(SOLARIS_23)
        for i in range(5):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        for i in range(3):
            model.process_ack(make_record(0.3 + i * 0.01, 513))
        assert not model.in_fast_recovery

    def test_recovery_inflation_beyond_threshold(self):
        model = make_model()
        for i in range(8):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        for i in range(3):
            model.process_ack(make_record(0.3 + i * 0.01, 513))
        inflated = model.cwnd
        model.process_ack(make_record(0.4, 513))
        assert model.cwnd == inflated + model.cwnd_mss


class TestSenderModelTimeout:
    def test_timeout_collapses_window(self):
        model = make_model()
        for i in range(4):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        model.apply_timeout(3.0)
        assert model.cwnd == model.cwnd_mss
        assert model.snd_nxt == model.snd_una

    def test_timeout_backs_off_estimator(self):
        model = make_model()
        model.observe_send(data_record(0.1, 1), is_retransmission=False)
        before = model.estimated_rto()
        model.apply_timeout(3.0)
        assert model.estimated_rto() > before

    def test_ledger_shrinks_on_timeout(self):
        model = make_model()
        for i in range(4):
            model.observe_send(data_record(0.1 + i * 0.01, 1 + 512 * i),
                               is_retransmission=False)
        model.process_ack(make_record(0.2, 513))
        model.apply_timeout(3.0)
        assert model.allowed_high() == model.snd_una + model.cwnd_mss


class TestQuench:
    def test_bsd_quench_slow_start(self):
        model = make_model()
        model.process_ack(make_record(0.1, 1))
        model.cwnd = 8192
        model.apply_quench(1.0)
        assert model.cwnd == model.cwnd_mss

    def test_solaris_quench_halves_ssthresh(self):
        model = make_model(SOLARIS_23)
        model.cwnd = 8192
        model.apply_quench(1.0)
        assert model.cwnd == model.cwnd_mss
        assert model.ssthresh == 4096

    def test_linux_quench_decrements(self):
        model = make_model(get_behavior("linux-1.0"))
        model.cwnd = 4096
        model.apply_quench(1.0)
        assert model.cwnd == 4096 - model.cwnd_mss
