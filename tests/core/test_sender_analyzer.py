"""Sender analysis: liberations, violations, classification (§6)."""

import pytest

from repro.capture.filter import PacketFilter
from repro.core.sender.analyzer import (
    TraceUnusable,
    analyze_sender,
    extract_facts,
)
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import CATALOG, get_behavior
from repro.trace.record import Trace
from repro.units import kbyte

from tests.conftest import cached_transfer


class TestFacts:
    def test_extracts_handshake_parameters(self):
        trace = cached_transfer("reno").sender_trace
        facts = extract_facts(trace)
        assert facts.offered_mss == 512
        assert facts.negotiated_mss == 512
        assert facts.peer_offered_mss_option
        assert facts.total_data == 51200
        assert facts.fin_seen

    def test_max_in_flight_bounded_by_transfer(self):
        facts = extract_facts(cached_transfer("reno").sender_trace)
        assert 512 <= facts.max_in_flight <= 51200

    def test_sender_window_caps_max_in_flight(self):
        transfer = cached_transfer("reno", "wan", sender_window=4096)
        facts = extract_facts(transfer.sender_trace)
        assert facts.max_in_flight <= 4096

    def test_missing_handshake_raises(self):
        trace = cached_transfer("reno").sender_trace
        headless = Trace(records=[r for r in trace if not r.is_syn])
        with pytest.raises(TraceUnusable):
            extract_facts(headless)


class TestSelfConsistency:
    """The fundamental property: analyzing implementation X's trace
    with model X yields no violations and kernel-scale delays."""

    @pytest.mark.parametrize("implementation", sorted(CATALOG))
    def test_clean_wan_trace(self, implementation):
        transfer = cached_transfer(implementation, "wan")
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior(implementation))
        assert analysis.violation_count == 0
        assert analysis.mean_response_delay < 0.005
        assert not analysis.filter_gaps

    @pytest.mark.parametrize("implementation", [
        "reno", "tahoe", "net3", "sunos-4.1.3", "linux-1.0",
        "solaris-2.4", "trumpet-2.0b", "irix-5.2", "hpux-9.05",
        "osf1-3.2", "windows-95", "linux-2.0.30", "bsdi-2.0",
    ])
    def test_lossy_trace(self, implementation):
        transfer = cached_transfer(implementation, "wan-lossy", seed=1)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior(implementation))
        assert analysis.violation_count == 0
        assert not analysis.filter_gaps

    def test_solaris_transatlantic_explained_as_timeouts(self):
        """Figure 5: every premature Solaris retransmission is
        explained as a (needless) timeout."""
        transfer = cached_transfer("solaris-2.4", "transatlantic")
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("solaris-2.4"))
        counts = analysis.counts_by_kind()
        assert analysis.violation_count == 0
        assert counts.get("timeout", 0) >= 30

    def test_linux10_flights_classified(self):
        transfer = cached_transfer("linux-1.0", "wan-lossy", seed=3)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("linux-1.0"))
        counts = analysis.counts_by_kind()
        assert counts.get("flight", 0) + counts.get("flight_start", 0) > 20
        assert analysis.violation_count == 0

    def test_reno_fast_retransmit_classified(self):
        from repro.netsim.link import DeterministicLoss
        from repro.capture.filter import attach_at_host
        from repro.netsim.engine import Engine
        from repro.netsim.network import build_path
        from repro.tcp.connection import run_bulk_transfer
        engine = Engine()
        path = build_path(engine,
                          forward_loss=DeterministicLoss(drop_nth=[20]))
        packet_filter = PacketFilter(vantage="sender")
        attach_at_host(path.sender, packet_filter)
        run_bulk_transfer(get_behavior("reno"), data_size=kbyte(50),
                          path=path)
        analysis = analyze_sender(packet_filter.trace(),
                                  get_behavior("reno"))
        assert analysis.counts_by_kind().get("fast_retransmit") == 1
        assert analysis.violation_count == 0

    def test_response_delay_equals_kernel_delay(self):
        analysis = analyze_sender(cached_transfer("reno").sender_trace,
                                  get_behavior("reno"))
        assert analysis.min_response_delay == pytest.approx(0.0003, abs=1e-4)


class TestCrossModel:
    """A wrong candidate produces violations or inflated delays (§6.1)."""

    def test_reno_trace_vs_tahoe_model(self):
        trace = cached_transfer("reno", "wan-lossy", seed=3).sender_trace
        analysis = analyze_sender(trace, get_behavior("tahoe"))
        assert analysis.violation_count > 5

    def test_linux_trace_vs_reno_model(self):
        trace = cached_transfer("linux-1.0", "wan-lossy", seed=3).sender_trace
        analysis = analyze_sender(trace, get_behavior("reno"))
        assert analysis.violation_count > 10

    def test_solaris_trace_vs_reno_model_on_high_rtt(self):
        trace = cached_transfer("solaris-2.4", "transatlantic").sender_trace
        analysis = analyze_sender(trace, get_behavior("reno"))
        # Reno would never retransmit that early: violations abound.
        assert analysis.violation_count > 10

    def test_indistinguishable_on_clean_traces(self):
        """Without loss, all Reno variants behave identically — the
        paper's rarely-manifested bugs need provocation to show."""
        trace = cached_transfer("reno", "wan").sender_trace
        for candidate in ("bsdi-1.1", "irix-5.2", "hpux-10"):
            analysis = analyze_sender(trace, get_behavior(candidate))
            assert analysis.violation_count == 0


class TestMeasurementErrorInteraction:
    def test_filter_gaps_reported_for_dropped_data_records(self):
        from repro.capture.errors import DropInjector
        packet_filter = PacketFilter(
            vantage="sender",
            drops=DropInjector(rate=0.06, seed=11, report_style="none"))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(50),
                                   sender_filter=packet_filter)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("reno"))
        assert analysis.filter_gaps      # detected the filter's drops

    def test_resequencing_produces_clues_not_violations(self):
        from repro.capture.errors import ResequencingInjector
        packet_filter = PacketFilter(
            vantage="sender",
            resequencing=ResequencingInjector(seed=5))
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(50),
                                   sender_filter=packet_filter)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("reno"))
        assert len(analysis.resequencing_clues) > 0


class TestSenderWindowInference:
    def test_window_limited_transfer_inferred(self):
        """§6.2: the TCP repeatedly stalls at its in-flight ceiling
        while cwnd/offered window would permit more."""
        transfer = cached_transfer("reno", "wan", sender_window=4096)
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("reno"))
        assert analysis.inferred_sender_window is not None
        assert analysis.inferred_sender_window <= 4096

    def test_unconstrained_transfer_not_inferred(self):
        analysis = analyze_sender(cached_transfer("reno").sender_trace,
                                  get_behavior("reno"))
        assert analysis.inferred_sender_window is None


class TestSourceQuenchInference:
    def test_unseen_quench_inferred(self):
        """§6.2: the quench never appears in the trace, yet the sending
        lull plus slow-start-consistent resumption reveals it."""
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(100),
                                   quench_threshold=4)
        assert transfer.result.sender.stats_quenches_seen >= 1
        analysis = analyze_sender(transfer.sender_trace,
                                  get_behavior("reno"))
        assert len(analysis.inferred_quenches) >= 1
        assert analysis.violation_count == 0

    def test_no_quench_inferred_on_clean_transfer(self):
        analysis = analyze_sender(cached_transfer("reno").sender_trace,
                                  get_behavior("reno"))
        assert analysis.inferred_quenches == []


class TestSummary:
    def test_summary_mentions_counts(self):
        analysis = analyze_sender(cached_transfer("reno").sender_trace,
                                  get_behavior("reno"))
        text = analysis.summary()
        assert "violations" in text and "new=" in text
