"""Implementation identification (§5, §6.1)."""

import pytest

from repro.core.fit import fit_candidate, identify_implementation
from repro.tcp.catalog import CATALOG, get_behavior

from tests.conftest import cached_transfer


class TestFitCategories:
    def test_self_fit_is_close(self):
        trace = cached_transfer("reno", "wan-lossy", seed=3).sender_trace
        fit = fit_candidate(trace, get_behavior("reno"), "reno")
        assert fit.category == "close"
        assert fit.violations == 0

    def test_wrong_lineage_is_incorrect(self):
        trace = cached_transfer("linux-1.0", "wan-lossy", seed=2).sender_trace
        fit = fit_candidate(trace, get_behavior("reno"), "reno")
        assert fit.category == "incorrect"

    def test_unusable_trace(self):
        from repro.trace.record import Trace
        fit = fit_candidate(Trace(), get_behavior("reno"), "reno")
        assert fit.category == "unusable"
        assert fit.analysis is None


class TestIdentification:
    def test_linux_identified_uniquely(self):
        trace = cached_transfer("linux-1.0", "wan-lossy", seed=2).sender_trace
        report = identify_implementation(trace)
        close = {fit.implementation for fit in report.close}
        assert close <= {"linux-1.0"}
        assert "linux-1.0" in close

    def test_solaris_narrowed_to_family(self):
        """2.3 and 2.4 differ only in receiver acking (§8.6): sender
        analysis cannot separate them, and should not pretend to."""
        trace = cached_transfer("solaris-2.4", "transatlantic").sender_trace
        report = identify_implementation(trace)
        close = {fit.implementation for fit in report.close}
        assert close == {"solaris-2.3", "solaris-2.4"}

    def test_reno_family_on_clean_trace(self):
        """Clean traces cannot distinguish Reno variants — everything
        Reno-like fits closely; independent stacks may coincide too.
        The key assertion: the true implementation is IN the close set
        and truly different stacks are excludable under provocation."""
        trace = cached_transfer("reno", "wan").sender_trace
        report = identify_implementation(trace)
        close = {fit.implementation for fit in report.close}
        assert "reno" in close

    def test_lossy_trace_excludes_other_lineages(self):
        trace = cached_transfer("reno", "wan-lossy", seed=3).sender_trace
        report = identify_implementation(trace)
        close = {fit.implementation for fit in report.close}
        assert "reno" in close
        assert "linux-1.0" not in close
        assert "tahoe" not in close
        assert "sunos-4.1.3" not in close

    def test_best_fit_ranked_first(self):
        trace = cached_transfer("linux-1.0", "wan-lossy", seed=2).sender_trace
        report = identify_implementation(trace)
        assert report.best.implementation == "linux-1.0"

    def test_summary_lists_all_candidates(self):
        trace = cached_transfer("reno").sender_trace
        report = identify_implementation(trace)
        text = report.summary()
        assert len(text.splitlines()) == len(CATALOG)

    def test_restricted_candidate_set(self):
        trace = cached_transfer("reno", "wan-lossy", seed=3).sender_trace
        candidates = {label: get_behavior(label)
                      for label in ("reno", "tahoe")}
        report = identify_implementation(trace, candidates)
        assert len(report.fits) == 2


class TestIdentificationMatrix:
    """Distinguishable implementations never cross-match under loss."""

    @pytest.mark.parametrize("truth,wrong", [
        ("linux-1.0", "reno"),
        ("reno", "linux-1.0"),
        ("tahoe", "reno"),
        ("reno", "tahoe"),
        ("trumpet-2.0b", "reno"),
    ])
    def test_wrong_candidate_rejected(self, truth, wrong):
        trace = cached_transfer(truth, "wan-lossy", seed=3).sender_trace
        truth_fit = fit_candidate(trace, get_behavior(truth), truth)
        wrong_fit = fit_candidate(trace, get_behavior(wrong), wrong)
        assert truth_fit.category == "close"
        assert wrong_fit.category != "close"
        assert truth_fit.score < wrong_fit.score
