"""Resequencing detectors against hand-crafted traces (§3.1.3)."""

import pytest

from repro.core.calibrate.resequencing import (
    detect_ack_before_arrival,
    detect_lull_then_ack,
    detect_resequencing,
)
from repro.tcp.catalog import get_behavior
from repro.trace.text import parse_trace

PREFIX = """\
0.000000 sender.1024 > receiver.9000: S 0:1(0) win 65535 <mss 512>
0.070000 receiver.9000 > sender.1024: S. 0:1(0) ack 1 win 65535 <mss 512>
0.070500 sender.1024 > receiver.9000: . 1:1(0) ack 1 win 65535
0.071000 sender.1024 > receiver.9000: . 1:513(512) ack 1 win 65535
"""


def sender_trace(body):
    trace = parse_trace(PREFIX + body, vantage="sender")
    return trace, trace.primary_flow()


def receiver_trace(body):
    trace = parse_trace(PREFIX + body, vantage="receiver")
    return trace, trace.primary_flow()


class TestLullThenAck:
    def test_fires_on_inverted_liberation(self):
        # A long lull, then a data packet recorded 300 us BEFORE the
        # ack that liberated it.
        trace, flow = sender_trace(
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.150300 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.500000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n"
            "1.500400 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        events = detect_lull_then_ack(trace, flow)
        assert len(events) == 1
        assert events[0].situation == "lull_then_ack"

    def test_quiet_when_ack_precedes_send(self):
        trace, flow = sender_trace(
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.150300 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.500000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n"
            "1.500300 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n")
        assert detect_lull_then_ack(trace, flow) == []

    def test_quiet_when_ack_is_far_after(self):
        # A timeout retransmission followed much later by an ack is
        # ordinary recovery, not resequencing.
        trace, flow = sender_trace(
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.150300 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.500000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.580000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        assert detect_lull_then_ack(trace, flow) == []


class TestAckBeforeArrival:
    def test_fires_when_ack_precedes_its_arrival(self):
        trace, flow = receiver_trace(
            "0.072000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n"
            "0.072500 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n")
        events = detect_ack_before_arrival(trace, flow)
        assert len(events) == 1
        assert events[0].situation == "ack_before_arrival"

    def test_quiet_in_normal_order(self):
        trace, flow = receiver_trace(
            "0.072000 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "0.072500 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        assert detect_ack_before_arrival(trace, flow) == []

    def test_quiet_when_arrival_never_comes(self):
        # An ack for unseen data with NO arrival shortly after is a
        # filter drop (check 7's territory), not resequencing.
        trace, flow = receiver_trace(
            "0.072000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n"
            "0.500000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n")
        assert detect_ack_before_arrival(trace, flow) == []


class TestVantageDispatch:
    def test_sender_vantage_runs_lull_detector(self):
        trace, _ = sender_trace(
            "0.150000 receiver.9000 > sender.1024: . 1:1(0) ack 513 win 65535\n"
            "0.150300 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n"
            "1.500000 sender.1024 > receiver.9000: . 1025:1537(512) ack 1 win 65535\n"
            "1.500400 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n")
        events = detect_resequencing(trace, get_behavior("reno"),
                                     vantage="sender")
        assert any(e.situation == "lull_then_ack" for e in events)

    def test_receiver_vantage_runs_arrival_detector(self):
        trace, _ = receiver_trace(
            "0.072000 receiver.9000 > sender.1024: . 1:1(0) ack 1025 win 65535\n"
            "0.072500 sender.1024 > receiver.9000: . 513:1025(512) ack 1 win 65535\n")
        events = detect_resequencing(trace, vantage="receiver")
        assert any(e.situation == "ack_before_arrival" for e in events)
