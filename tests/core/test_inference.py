"""Hidden-parameter inference (§6.2): initial ssthresh from traces."""

import pytest

from repro.core.sender.inference import (
    first_retransmission_round,
    flight_rounds,
    infer_initial_ssthresh,
)
from repro.tcp.catalog import get_behavior

from tests.conftest import cached_transfer


class TestFlightRounds:
    def test_slow_start_rounds_grow(self):
        rounds = flight_rounds(cached_transfer("reno",
                                               data_size=102400).sender_trace)
        assert len(rounds) >= 5
        # Multiplicative growth early on.
        assert rounds[3] >= 1.3 * rounds[1]

    def test_rounds_positive(self):
        rounds = flight_rounds(cached_transfer("reno").sender_trace)
        assert all(r > 0 for r in rounds)

    def test_loss_round_located(self):
        trace = cached_transfer("reno", "wan-lossy", seed=3).sender_trace
        loss_round = first_retransmission_round(trace)
        assert loss_round is not None
        assert loss_round >= 1

    def test_no_loss_round_on_clean_trace(self):
        trace = cached_transfer("reno").sender_trace
        assert first_retransmission_round(trace) is None


class TestInitialSsthreshInference:
    def test_route_cache_init_detected(self):
        """The §6.2 experimental TCP: ssthresh from the route cache."""
        trace = cached_transfer("experimental-rc", "wan",
                                data_size=102400).sender_trace
        estimate = infer_initial_ssthresh(trace)
        assert estimate is not None
        assert estimate.non_default
        # True value: 8 segments = 4096 bytes; the trace-visible
        # transition lands within a couple of segments of it.
        assert 4096 - 1024 <= estimate.transition_flight <= 4096 + 1024

    def test_default_init_yields_none(self):
        trace = cached_transfer("reno", "wan", data_size=102400).sender_trace
        assert infer_initial_ssthresh(trace) is None

    def test_loss_transition_not_misattributed(self):
        """A post-loss transition reflects the cut, not the init."""
        trace = cached_transfer("reno", "wan-lossy", seed=1,
                                data_size=102400).sender_trace
        estimate = infer_initial_ssthresh(trace)
        if estimate is not None:
            assert not estimate.non_default

    def test_solaris_conservative_init_detected(self):
        """§8.6: Solaris initializes ssthresh to one MSS."""
        trace = cached_transfer("solaris-2.4", "wan",
                                data_size=102400).sender_trace
        estimate = infer_initial_ssthresh(trace)
        assert estimate is not None
        assert estimate.non_default
        assert estimate.transition_flight <= 3 * 512

    def test_short_trace_returns_none(self):
        trace = cached_transfer("reno", "wan", data_size=4096).sender_trace
        assert infer_initial_ssthresh(trace) is None

    def test_high_rtt_path_still_works(self):
        trace = cached_transfer("experimental-rc", "transatlantic",
                                data_size=102400).sender_trace
        estimate = infer_initial_ssthresh(trace)
        assert estimate is not None and estimate.non_default
