"""Vantage-point inference."""

from repro.core.vantage import infer_vantage
from repro.trace.record import Trace

from tests.conftest import cached_transfer


class TestMetadataPath:
    def test_uses_declared_vantage(self):
        trace = cached_transfer("reno").sender_trace
        assert infer_vantage(trace) == "sender"
        assert infer_vantage(cached_transfer("reno").receiver_trace) \
            == "receiver"


class TestInferencePath:
    def strip(self, trace):
        return Trace(records=trace.records, vantage="", filter_name="")

    def test_sender_vantage_inferred_from_timing(self):
        trace = self.strip(cached_transfer("reno").sender_trace)
        assert infer_vantage(trace) == "sender"

    def test_receiver_vantage_inferred_from_timing(self):
        trace = self.strip(cached_transfer("reno").receiver_trace)
        assert infer_vantage(trace) == "receiver"

    def test_inference_across_implementations(self):
        for implementation in ("linux-1.0", "solaris-2.4", "tahoe"):
            transfer = cached_transfer(implementation)
            assert infer_vantage(self.strip(transfer.sender_trace)) \
                == "sender"
            assert infer_vantage(self.strip(transfer.receiver_trace)) \
                == "receiver"

    def test_empty_trace_defaults_to_sender(self):
        assert infer_vantage(Trace()) == "sender"
