"""Timing-analysis internals: pairing, envelopes, line fits (§3.1.4)."""

import pytest

from repro.core.calibrate.timing import (
    _fit_line,
    _fit_residuals,
    _segment_minima,
    analyze_trace_pair,
    pair_records,
)
from repro.packets import ACK, Endpoint
from repro.trace.record import Trace, TraceRecord

from tests.conftest import cached_transfer

A = Endpoint("a", 1)
B = Endpoint("b", 2)


def record(t, seq, payload=512, src=A, dst=B):
    return TraceRecord(timestamp=t, src=src, dst=dst, seq=seq, ack=0,
                       flags=ACK, payload=payload, window=65535)


class TestPairRecords:
    def test_matches_by_header_identity(self):
        trace_a = Trace(records=[record(0.0, 100), record(1.0, 612)])
        trace_b = Trace(records=[record(0.1, 100), record(1.1, 612)])
        pairs = pair_records(trace_a, trace_b)
        assert len(pairs) == 2
        assert pairs[0][0].seq == pairs[0][1].seq == 100

    def test_retransmissions_match_nth_occurrence(self):
        trace_a = Trace(records=[record(0.0, 100), record(1.0, 100)])
        trace_b = Trace(records=[record(0.1, 100), record(1.1, 100)])
        pairs = pair_records(trace_a, trace_b)
        assert len(pairs) == 2
        # first matches first, second matches second
        assert pairs[0][1].timestamp == 0.1
        assert pairs[1][1].timestamp == 1.1

    def test_unmatched_records_skipped(self):
        trace_a = Trace(records=[record(0.0, 100), record(1.0, 612)])
        trace_b = Trace(records=[record(0.1, 100)])
        pairs = pair_records(trace_a, trace_b)
        assert len(pairs) == 1

    def test_real_traces_pair_fully_without_loss(self):
        transfer = cached_transfer("reno")
        pairs = pair_records(transfer.sender_trace, transfer.receiver_trace)
        assert len(pairs) == len(transfer.sender_trace)


class TestSegmentMinima:
    def test_minimum_per_bucket(self):
        samples = [(0.0, 5.0), (0.4, 3.0), (0.6, 9.0), (0.9, 7.0)]
        buckets = _segment_minima(samples, 2, 0.0, 1.0)
        assert buckets[0][1] == 3.0
        assert buckets[1][1] == 7.0

    def test_empty_buckets_absent(self):
        samples = [(0.0, 1.0), (0.05, 2.0)]
        buckets = _segment_minima(samples, 10, 0.0, 1.0)
        assert set(buckets) == {0}

    def test_out_of_range_samples_clamped(self):
        samples = [(-0.5, 1.0), (1.5, 2.0)]
        buckets = _segment_minima(samples, 4, 0.0, 1.0)
        assert set(buckets) == {0, 3}


class TestFits:
    def test_fit_line_exact(self):
        points = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]
        slope, intercept = _fit_line(points)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_fit_line_degenerate(self):
        slope, intercept = _fit_line([(1.0, 7.0), (1.0, 9.0)])
        assert slope == 0.0
        assert intercept == pytest.approx(8.0)

    def test_residuals_zero_on_perfect_line(self):
        points = [(float(k), 2.0 * k) for k in range(5)]
        slope, rms = _fit_residuals(points)
        assert slope == pytest.approx(2.0)
        assert rms == pytest.approx(0.0, abs=1e-12)

    def test_residuals_capture_noise(self):
        points = [(0.0, 0.0), (1.0, 1.0), (2.0, 0.0), (3.0, 1.0)]
        _, rms = _fit_residuals(points)
        assert rms > 0.1


class TestPairAnalysisEdges:
    def test_too_few_samples_neutral(self):
        trace_a = Trace(records=[record(0.0, 100)])
        trace_b = Trace(records=[record(0.1, 100)])
        analysis = analyze_trace_pair(trace_a, trace_b)
        assert not analysis.skew_detected
        assert analysis.adjustments == []

    def test_unmatched_counts_reported(self):
        transfer = cached_transfer("reno", "wan-lossy", seed=3)
        analysis = analyze_trace_pair(transfer.sender_trace,
                                      transfer.receiver_trace)
        # network drops leave sender-side records unmatched
        assert analysis.unmatched_a > 0
