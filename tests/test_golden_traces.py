"""Golden-trace regression (the paper's §5 discipline).

"Experience has shown the importance of regression testing against the
entire set of available traces, any time a change is made to the
implementation behavior."  These fixtures pin the exact wire behavior
of representative stacks on representative paths; any change to the
simulator, the stacks, or the timers that alters a single packet or
timestamp fails here.

If a change is *intended* to alter wire behavior, regenerate with:

    python -c "import tests.test_golden_traces as g; g.regenerate()"

and review the diff like any behavioral change.
"""

import pathlib

import pytest

from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.trace.text import parse_trace, render_trace

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

CASES = [
    ("reno", "wan", 20480, 0),
    ("tahoe", "wan-lossy", 20480, 1),
    ("solaris-2.4", "transatlantic", 20480, 0),
    ("linux-1.0", "wan-lossy", 20480, 1),
    ("net3", "lan", 10240, 0),
]


def fixture_path(label, scenario, size, seed) -> pathlib.Path:
    return FIXTURES / f"{label}_{scenario}_{size}_{seed}.txt"


def current_text(label, scenario, size, seed) -> str:
    transfer = traced_transfer(get_behavior(label), scenario,
                               data_size=size, seed=seed)
    return render_trace(transfer.sender_trace, relative_time=False)


def regenerate() -> None:
    FIXTURES.mkdir(exist_ok=True)
    for case in CASES:
        fixture_path(*case).write_text(current_text(*case))


@pytest.mark.parametrize("case", CASES,
                         ids=["-".join(str(part) for part in c)
                              for c in CASES])
def test_trace_matches_golden_fixture(case):
    expected = fixture_path(*case).read_text()
    actual = current_text(*case)
    if actual != expected:
        expected_lines = expected.splitlines()
        actual_lines = actual.splitlines()
        for index, (a, b) in enumerate(zip(expected_lines, actual_lines)):
            assert a == b, (f"first divergence at record {index}:\n"
                            f"  golden: {a}\n  actual: {b}")
        assert len(actual_lines) == len(expected_lines), (
            f"record count changed: {len(expected_lines)} -> "
            f"{len(actual_lines)}")


@pytest.mark.parametrize("case", CASES,
                         ids=["-".join(str(part) for part in c)
                              for c in CASES])
def test_golden_fixture_parses_and_analyzes(case):
    """The stored fixtures themselves stay analyzable (guards against
    fixture rot and parser drift)."""
    from repro.core import analyze_sender
    label = case[0]
    trace = parse_trace(fixture_path(*case).read_text(), vantage="sender")
    analysis = analyze_sender(trace, get_behavior(label))
    assert analysis.violation_count == 0
