#!/usr/bin/env python3
"""Cross-run regression diff for BENCH_*.json result files.

Compares two benchmark result files (or two directories of them,
matched by filename) metric by metric, so CI can track perf trends
PR-over-PR instead of eyeballing JSON diffs:

    python scripts/bench_diff.py old/BENCH_identification.json \
                                 new/BENCH_identification.json
    python scripts/bench_diff.py old-results/ new-results/ --tolerance 0.25

Metric direction is inferred from the key name: wall-clock seconds
(``*_s``) want to go down; throughputs and speedups (``*_per_s``,
``*speedup*``, ``*rate*``) want to go up; anything else (sizes, counts,
gates) is informational and never fails the diff.  A metric that moved
in the bad direction by more than ``--tolerance`` (relative) is a
regression; with ``--strict`` regressions set a nonzero exit code,
otherwise the diff is purely informational — benchmark numbers from
shared CI runners are noisy, so the strict gate is opt-in.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

LOWER_IS_BETTER = ("_s",)
HIGHER_IS_BETTER = ("_per_s", "speedup", "rate")


def flatten(payload, prefix: str = "") -> dict:
    """Nested dicts to dotted keys; keep only numeric leaves."""
    flat: dict = {}
    for key, value in payload.items():
        dotted = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten(value, dotted))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[dotted] = float(value)
    return flat


def direction(key: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 informational."""
    leaf = key.rsplit(".", 1)[-1]
    if any(marker in leaf for marker in HIGHER_IS_BETTER):
        return 1
    if leaf.endswith(LOWER_IS_BETTER):
        return -1
    return 0


def diff_payloads(old: dict, new: dict, tolerance: float,
                  name: str = "") -> tuple[list[str], int]:
    """Render one file's comparison; return (lines, regression count)."""
    flat_old, flat_new = flatten(old), flatten(new)
    lines = []
    if name:
        lines.append(f"== {name} ==")
    regressions = 0
    for key in sorted(set(flat_old) | set(flat_new)):
        if key not in flat_old:
            lines.append(f"  {key:55s} (new metric: {flat_new[key]:g})")
            continue
        if key not in flat_new:
            lines.append(f"  {key:55s} (metric removed; was "
                         f"{flat_old[key]:g})")
            continue
        before, after = flat_old[key], flat_new[key]
        if before == after:
            continue
        delta = (after - before) / abs(before) if before else float("inf")
        better = direction(key)
        verdict = ""
        if better and abs(delta) > tolerance:
            if delta * better > 0:
                verdict = "IMPROVED"
            else:
                verdict = "REGRESSED"
                regressions += 1
        lines.append(f"  {key:55s} {before:>12g} -> {after:>12g}  "
                     f"({delta:+.1%}) {verdict}")
    if len(lines) <= (1 if name else 0):
        lines.append("  no metric changes")
    return lines, regressions


def pair_up(old_path: Path, new_path: Path) -> list[tuple[str, Path, Path]]:
    """Resolve file/file or directory/directory inputs into pairs."""
    if old_path.is_dir() != new_path.is_dir():
        raise SystemExit("bench_diff: OLD and NEW must both be files "
                         "or both be directories")
    if not old_path.is_dir():
        return [(new_path.name, old_path, new_path)]
    pairs = []
    for new_file in sorted(new_path.glob("BENCH_*.json")):
        old_file = old_path / new_file.name
        if old_file.exists():
            pairs.append((new_file.name, old_file, new_file))
    if not pairs:
        raise SystemExit(f"bench_diff: no matching BENCH_*.json files "
                         f"between {old_path} and {new_path}")
    return pairs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json benchmark results across runs.")
    parser.add_argument("old", type=Path,
                        help="baseline result file or directory")
    parser.add_argument("new", type=Path,
                        help="candidate result file or directory")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative change treated as noise "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any metric regressed beyond "
                             "the tolerance")
    args = parser.parse_args(argv)

    total_regressions = 0
    for name, old_file, new_file in pair_up(args.old, args.new):
        with open(old_file) as handle:
            old = json.load(handle)
        with open(new_file) as handle:
            new = json.load(handle)
        lines, regressions = diff_payloads(old, new, args.tolerance, name)
        total_regressions += regressions
        print("\n".join(lines))
    if total_regressions:
        print(f"{total_regressions} metric(s) regressed beyond "
              f"{args.tolerance:.0%}")
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
