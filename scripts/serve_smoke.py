#!/usr/bin/env python
"""End-to-end smoke test for ``tcpanaly serve`` — the CI gate.

Drives the real CLI in a subprocess the way an operator would:

1. start the daemon against a capture file that does not exist yet,
   with the stats endpoint on an ephemeral port;
2. poll ``/readyz`` until the daemon reports ready;
3. append a staggered multi-connection capture in 4 KiB chunks, so
   early connections retire (stream-clock idle timeout) while the
   file is still growing;
4. wait for an *identified* flow to appear in the JSONL sink — live
   analysis, no end-of-capture finalize involved;
5. check ``/stats`` serves a sane snapshot;
6. SIGTERM, and require a clean drain: exit code 0, the drain banner
   on stdout, no traceback on stderr.

Exits 0 on success, 1 with a diagnostic on any failure or timeout.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHUNK = 4096
DEADLINE = 120.0


def fail(message: str, proc: subprocess.Popen | None = None) -> None:
    print(f"serve_smoke: FAIL — {message}", file=sys.stderr)
    if proc is not None:
        if proc.poll() is None:
            proc.kill()
        try:
            # Forked analysis workers can inherit the pipes; don't let
            # them turn a diagnostic dump into a hang.
            stdout, stderr = proc.communicate(timeout=10)
            print("---- daemon stdout ----\n" + stdout, file=sys.stderr)
            print("---- daemon stderr ----\n" + stderr, file=sys.stderr)
        except subprocess.TimeoutExpired:
            print("(daemon output unavailable: pipes still held open)",
                  file=sys.stderr)
    sys.exit(1)


def wait_until(condition, timeout: float, what: str, proc=None):
    start = time.monotonic()
    while time.monotonic() - start < timeout:
        result = condition()
        if result:
            return result
        if proc is not None and proc.poll() is not None:
            fail(f"daemon exited (rc {proc.returncode}) while waiting "
                 f"for {what}", proc)
        time.sleep(0.1)
    fail(f"timed out after {timeout:.0f}s waiting for {what}", proc)


def http_ok(url: str) -> bool:
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status == 200
    except (urllib.error.URLError, ConnectionError, OSError):
        return False


def make_capture_bytes(workdir: Path) -> bytes:
    """A 3-connection capture staggered 80s apart: connections go
    idle long past the flow table's 64s timeout while later records
    are still arriving, so flows retire (and get analyzed) live."""
    from repro.harness.corpus import generate_interleaved_capture
    from repro.trace.pcap import write_pcap

    capture = generate_interleaved_capture(
        implementations=["reno"], connections=3, scenarios=("wan",),
        data_size=16384, start_interval=80.0)
    donor = workdir / "donor.pcap"
    write_pcap(capture.trace, donor)
    return donor.read_bytes()


def identified_lines(sink: Path) -> list[dict]:
    if not sink.exists():
        return []
    lines = []
    for line in sink.read_text().splitlines():
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue               # torn trailing line mid-append
        identification = payload.get("identification") or {}
        if "error_kind" not in payload \
                and identification.get("best_category") == "close":
            lines.append(payload)
    return lines


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    data = make_capture_bytes(workdir)
    grow = workdir / "grow.pcap"
    out = workdir / "out"
    grow.write_bytes(b"")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + ([env["PYTHONPATH"]]
                               if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(grow),
         "--out", str(out), "--jobs", "2", "--http", "0",
         "--poll", "0.05"],
        cwd=REPO, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)

    # 1. The daemon announces its ephemeral port, then reports ready.
    port_file = out / "http.port"
    wait_until(port_file.exists, 30.0, "http.port announcement", proc)
    port = int(port_file.read_text().strip())
    base_url = f"http://127.0.0.1:{port}"
    wait_until(lambda: http_ok(f"{base_url}/readyz"), 30.0,
               "/readyz to return 200", proc)
    print(f"serve_smoke: daemon ready on port {port}")

    # 2. Grow the capture under the daemon, 4 KiB at a time.
    for start in range(0, len(data), CHUNK):
        with open(grow, "ab") as handle:
            handle.write(data[start:start + CHUNK])
        time.sleep(0.01)
    print(f"serve_smoke: appended {len(data)} bytes")

    # 3. Live analysis: an identified flow lands in the sink while the
    # daemon is still running (no finalize, no idle exit).
    sink = out / "results" / "grow.pcap.jsonl"
    lines = wait_until(lambda: identified_lines(sink), DEADLINE,
                       "an identified flow in the sink", proc)
    best = lines[0]["identification"]["best"]
    print(f"serve_smoke: {len(lines)} identified flow(s) in sink, "
          f"first: {lines[0]['trace']} -> {best}")

    # 4. The stats endpoint serves a coherent snapshot.
    with urllib.request.urlopen(f"{base_url}/stats", timeout=5) as resp:
        stats = json.loads(resp.read())
    for section in ("counters", "gauges", "rolling"):
        if section not in stats:
            fail(f"/stats snapshot missing {section!r}: {stats}", proc)
    if stats["counters"]["sink_lines"] < 1:
        fail(f"/stats reports no sink lines: {stats['counters']}", proc)
    print(f"serve_smoke: /stats ok — {stats['counters']}")

    # 5. The Prometheus endpoint agrees with /stats and reports the
    # governor healthy.
    with urllib.request.urlopen(f"{base_url}/metrics", timeout=5) as resp:
        content_type = resp.headers.get("Content-Type", "")
        metrics = resp.read().decode()
    if not content_type.startswith("text/plain"):
        fail(f"/metrics content type {content_type!r}", proc)
    sink_total = next(
        (int(line.split()[-1]) for line in metrics.splitlines()
         if line.startswith("tcpanaly_serve_sink_lines_total ")), None)
    if sink_total is None or sink_total < stats["counters"]["sink_lines"]:
        fail(f"/metrics sink_lines_total {sink_total!r} behind /stats "
             f"{stats['counters']['sink_lines']}", proc)
    for needle in ('tcpanaly_serve_health_state{state="healthy"} 1',
                   "# TYPE tcpanaly_serve_flows_completed_total counter"):
        if needle not in metrics:
            fail(f"/metrics missing {needle!r}:\n{metrics}", proc)
    print(f"serve_smoke: /metrics ok — "
          f"{len(metrics.splitlines())} exposition lines")

    # 6. SIGTERM drains cleanly.
    proc.send_signal(signal.SIGTERM)
    try:
        stdout, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        fail("daemon did not exit within 60s of SIGTERM", proc)
    if proc.returncode != 0:
        print(stderr, file=sys.stderr)
        fail(f"daemon exited {proc.returncode} after SIGTERM")
    if "tcpanaly serve: drained" not in stdout:
        fail(f"drain banner missing from stdout:\n{stdout}")
    if "Traceback" in stderr:
        fail(f"traceback on stderr:\n{stderr}")
    print("serve_smoke: PASS — clean drain after SIGTERM")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO / "src"))
    main()
