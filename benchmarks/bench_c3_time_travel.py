"""C3 — §3.1.4: time travel and paired-trace clock calibration.

The paper observed more than 500 time-travel instances, all on
BSDI 1.1 / NetBSD 1.0 tracing machines whose fast-running clocks were
periodically stepped back to an external reference.  Forward steps
are nearly invisible in a single trace but detectable from a trace
pair, as are relative skew between the endpoints' clocks.

We emulate the BSDI-style clock (fast rate + periodic hard sync),
count time travel across a trace population, and exercise the paired
analysis: skew estimation accuracy and step detection.
"""

from repro.capture.clock import SkewedClock, SteppingClock
from repro.capture.filter import PacketFilter
from repro.core.calibrate import calibrate_trace
from repro.core.calibrate.timing import detect_time_travel
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbyte

from benchmarks.conftest import emit

TRACES = 8


def run_clock_study():
    # Population 1: BSDI-style fast clocks, hard-synced every 2 s.
    travel_traces = 0
    travel_events = 0
    for seed in range(TRACES):
        # A fast clock yanked back 150 ms every half-second: each yank
        # exceeds typical inter-record gaps, so timestamps decrease.
        clock = SteppingClock(rate=1.01,
                              steps=[(0.5, -0.15), (1.0, -0.15)])
        packet_filter = PacketFilter(vantage="sender", clock=clock)
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(40), seed=seed,
                                   sender_filter=packet_filter)
        events = detect_time_travel(transfer.sender_trace)
        if events:
            travel_traces += 1
            travel_events += len(events)

    # Population 2: clean clocks — no time travel anywhere.
    clean_events = 0
    for seed in range(TRACES):
        transfer = traced_transfer(get_behavior("reno"), "wan",
                                   data_size=kbyte(40), seed=seed)
        clean_events += len(detect_time_travel(transfer.sender_trace))

    # Paired-trace skew estimation on a lightly loaded path.
    skew_filter = PacketFilter(vantage="sender",
                               clock=SkewedClock(rate=1.0005))
    skewed = traced_transfer(get_behavior("reno"), "wan",
                             data_size=kbyte(100),
                             sender_filter=skew_filter, sender_window=4096)
    skew_report = calibrate_trace(skewed.sender_trace, get_behavior("reno"),
                                  peer_trace=skewed.receiver_trace)

    # Paired-trace forward-step detection (invisible as time travel).
    step_filter = PacketFilter(vantage="sender",
                               clock=SteppingClock(steps=[(1.0, 0.5)]))
    stepped = traced_transfer(get_behavior("reno"), "wan",
                              data_size=kbyte(100),
                              sender_filter=step_filter, sender_window=4096)
    step_report = calibrate_trace(stepped.sender_trace, get_behavior("reno"),
                                  peer_trace=stepped.receiver_trace)
    forward_travel = detect_time_travel(stepped.sender_trace)

    return (travel_traces, travel_events, clean_events,
            skew_report.pair_analysis, step_report.pair_analysis,
            forward_travel)


def test_c3_clock_calibration(once):
    (travel_traces, travel_events, clean_events, skew, step,
     forward_travel) = once(run_clock_study)

    emit("C3: time travel and clock calibration (§3.1.4)", [
        f"BSDI-style clocks: {travel_traces}/{TRACES} traces show time "
        f"travel ({travel_events} events) — paper: >500 instances, all "
        f"BSDI 1.1 / NetBSD 1.0",
        f"clean clocks: {clean_events} events",
        f"relative skew estimate: {skew.relative_skew_ppm:+.0f} ppm "
        f"(true -500), detected={skew.skew_detected}",
        f"forward step: invisible as time travel "
        f"({len(forward_travel)} events) but found by pair analysis: "
        f"{[(round(a.time, 2), round(a.magnitude, 2)) for a in step.adjustments]}",
    ])

    # Shape: the defective clock population shows time travel, the
    # clean one none; skew estimated within 20%; the forward step is
    # caught only by the paired analysis.
    assert travel_traces == TRACES
    assert clean_events == 0
    assert skew.skew_detected
    assert abs(skew.relative_skew_ppm + 500) < 100
    assert forward_travel == []
    assert len(step.adjustments) == 1
    assert abs(step.adjustments[0].magnitude + 0.5) < 0.1
