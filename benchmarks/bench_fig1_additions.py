"""F1 — Figure 1: packet filter duplication (IRIX 5.2/5.3).

The paper's Figure 1 shows every outgoing data packet recorded twice:
the first copies at >2.5 MB/s (OS sourcing rate — bogus timing) and
the second at ~1 MB/s (the Ethernet's rate — accurate timing).

We reproduce the phenomenon with the duplication injector on a LAN
transfer, regenerate the two-slope sequence plot, and verify tcpanaly
(a) detects the duplicates, (b) measures the two rates, and
(c) discards the later copies so analysis proceeds cleanly.
"""

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.capture.errors import DuplicationInjector
from repro.capture.filter import PacketFilter
from repro.core.calibrate.additions import (
    detect_duplicates,
    remove_duplicates,
    slope_analysis,
)
from repro.core.sender.analyzer import analyze_sender
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbyte

from benchmarks.conftest import emit


def run_duplicated_capture():
    packet_filter = PacketFilter(
        name="irix-5.2-filter", vantage="sender",
        duplication=DuplicationInjector(os_rate=2.6e6, wire_rate=1.0e6))
    transfer = traced_transfer(get_behavior("irix-5.2"), "lan",
                               data_size=kbyte(60),
                               sender_filter=packet_filter)
    trace = transfer.sender_trace
    duplicates = detect_duplicates(trace, behavior=get_behavior("irix-5.2"))
    slopes = slope_analysis(trace, duplicates)
    cleaned = remove_duplicates(trace, duplicates)
    analysis = analyze_sender(cleaned, get_behavior("irix-5.2"))
    return trace, duplicates, slopes, cleaned, analysis


def test_fig1_filter_duplication(once):
    trace, duplicates, slopes, cleaned, analysis = once(run_duplicated_capture)

    flow = trace.primary_flow()
    outbound = [r for r in trace if r.flow == flow and r.payload > 0]
    plot = sequence_plot(trace, title="Figure 1: packet filter duplication")
    emit("Figure 1: packet filter duplication", [
        render_ascii_plot(plot, width=70, height=18),
        f"outbound data records: {len(outbound)} "
        f"(every packet recorded twice)",
        f"duplicate pairs detected: {len(duplicates)}",
        f"first-copy rate:  {slopes.first_copy_rate / 1e6:.2f} MB/s "
        f"(paper: >2.5 MB/s, OS sourcing rate)",
        f"second-copy rate: {slopes.second_copy_rate / 1e6:.2f} MB/s "
        f"(paper: ~1 MB/s, Ethernet rate)",
        f"after discarding later copies: {len(cleaned)} records, "
        f"{analysis.violation_count} violations",
    ])

    # Shape: nearly every data packet is duplicated; the early copies
    # run at least ~2x the rate of the wire copies; cleaning restores
    # an analyzable trace.
    data_pairs = [d for d in duplicates if d.first.payload > 0]
    assert len(data_pairs) >= 0.9 * len(outbound) / 2
    assert slopes.first_copy_rate >= 1.8 * slopes.second_copy_rate
    assert slopes.second_copy_rate == pytest_approx(1.0e6, rel=0.35)
    assert analysis.violation_count == 0


def pytest_approx(value, rel):
    import pytest
    return pytest.approx(value, rel=rel)
