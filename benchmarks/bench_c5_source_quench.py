"""C5 — §6.2: inferring unseen ICMP source quench.

Source quenches never appear in a TCP-only packet trace, yet they
change the sender's behavior (BSD: slow start; Solaris: slow start
plus halved ssthresh; Linux 1.0: cwnd minus one segment — for which
the paper notes the inference "does not work", since it does not
enter slow start).  tcpanaly detected 91 quenches among 20,000 traces
by finding large response delays whose surrounding packet series is
consistent with slow start having begun in between.

We run transfers over a quenching router and tabulate: inference hits
when quenches truly occurred, zero inferences on quench-free traces,
and the documented non-detectability for Linux 1.0.
"""

from repro.core.sender.analyzer import analyze_sender
from repro.harness.scenarios import Scenario, traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbit, kbyte

from benchmarks.conftest import emit

#: A path on which a quench-induced window collapse produces a lull
#: long enough to observe (~240 ms RTT, small bandwidth-delay product
#: so even Solaris's conservatively-grown window overruns the queue).
QUENCH_PATH = Scenario("quench-path", bottleneck_bandwidth=kbit(256),
                       bottleneck_delay=0.12)


def run_quench_study():
    rows = []
    for implementation in ("reno", "solaris-2.4", "linux-1.0"):
        quenched = traced_transfer(get_behavior(implementation), QUENCH_PATH,
                                   data_size=kbyte(100), quench_threshold=4)
        analysis = analyze_sender(quenched.sender_trace,
                                  get_behavior(implementation))
        clean = traced_transfer(get_behavior(implementation), QUENCH_PATH,
                                data_size=kbyte(100))
        clean_analysis = analyze_sender(clean.sender_trace,
                                        get_behavior(implementation))
        rows.append({
            "implementation": implementation,
            "true_quenches": quenched.result.sender.stats_quenches_seen,
            "inferred": len(analysis.inferred_quenches),
            "violations": analysis.violation_count,
            "clean_inferred": len(clean_analysis.inferred_quenches),
        })
    return rows


def test_c5_source_quench_inference(once):
    rows = once(run_quench_study)

    lines = [f"{'implementation':16s} {'true':>5s} {'inferred':>9s} "
             f"{'violations':>11s} {'false-pos':>10s}"]
    for row in rows:
        lines.append(f"{row['implementation']:16s} "
                     f"{row['true_quenches']:5d} {row['inferred']:9d} "
                     f"{row['violations']:11d} {row['clean_inferred']:10d}")
    lines.append("(paper: 91 quenches in 20,000 traces; inference keys on "
                 "slow-start-consistent lulls, so it cannot work for "
                 "Linux 1.0, which merely decrements cwnd.  Detection is "
                 "opportunistic: repeated quenches against an already-"
                 "collapsed window leave no visible lull)")
    emit("C5: unseen source-quench inference (§6.2)", lines)

    by_implementation = {r["implementation"]: r for r in rows}
    # Shape: slow-start responders are caught; quench-free traces never
    # produce inferences; Linux 1.0 is documented non-detectable.
    for implementation in ("reno", "solaris-2.4"):
        row = by_implementation[implementation]
        assert row["true_quenches"] >= 1
        assert row["inferred"] >= 1
        assert row["violations"] == 0
    assert by_implementation["linux-1.0"]["inferred"] == 0
    for row in rows:
        assert row["clean_inferred"] == 0
