"""S3 — serve chaos: poisoned sources cannot hurt healthy ones.

The governance layer's acceptance gate.  One daemon tails a fleet of
sources of which several are deliberately hostile:

* a **crash-loop** source — every flow kills its analysis worker
  (fault-injected), so its circuit breaker must trip and quarantine;
* a **decode-storm** source — valid pcap framing whose every record
  is garbage, the classic "someone pointed the daemon at noise" case;
* a **rotation** source — truncated in place mid-tail, logrotate
  style;
* with ``SERVE_CHAOS_ENOSPC=1`` (the default), a windowed **ENOSPC**
  fault against the sink, so some appends fail and park mid-run.

The gate, asserted at the end:

1. the daemon exits 0 — poisoned sources never take the process down;
2. breakers are quarantined for exactly the poisoned sources, and
   ``closed`` for every healthy one;
3. each healthy source's JSONL is **byte-identical** to a one-shot
   ``tcpanaly batch --stream`` over the same capture (modulo the
   capture-wide ``ingest`` block) — chaos cost the healthy traffic
   nothing, not even ordering within a source;
4. no sink line was lost or duplicated despite the ENOSPC window
   (parked payloads flush once the "disk" recovers).

CI runs a reduced configuration via ``SERVE_CHAOS_SOURCES``.  On
failure the out directory (sink + journal) is the reproducer; the CI
job uploads it as an artifact.
"""

import json
import os
from pathlib import Path

from repro.harness.corpus import generate_interleaved_capture
from repro.harness.faults import (
    FaultPlan,
    FaultSpec,
    ResourceFaultPlan,
    ResourceFaultSpec,
    decode_storm_bytes,
)
from repro.pipeline.runner import BatchItem, run_batch
from repro.serve import ServeConfig, ServeDaemon
from repro.trace.pcap import write_pcap

from benchmarks.conftest import emit

#: Healthy sources in the fleet (poisoned ones ride on top).
HEALTHY_SOURCES = int(os.environ.get("SERVE_CHAOS_SOURCES", "4"))
CONNECTIONS = int(os.environ.get("SERVE_CHAOS_CONNECTIONS", "4"))
ENOSPC = os.environ.get("SERVE_CHAOS_ENOSPC", "1") == "1"
IMPLEMENTATIONS = ["reno", "tahoe", "linux-1.0"]


def write_healthy_captures(directory):
    paths = []
    for index in range(HEALTHY_SOURCES):
        capture = generate_interleaved_capture(
            implementations=[IMPLEMENTATIONS[index %
                                             len(IMPLEMENTATIONS)]],
            connections=CONNECTIONS, scenarios=("wan",),
            data_size=8192)
        path = directory / f"healthy-{index}.pcap"
        write_pcap(capture.trace, path)
        paths.append(path)
    return paths


def write_poisoned_captures(directory, donor_bytes):
    # Crash-loop: a *valid* capture whose flows are all fault-killed.
    crash = directory / "crashloop.pcap"
    crash.write_bytes(donor_bytes)
    # Decode storm: pcap framing, garbage records — every record is a
    # decode error, zero flows, but the reader never raises.
    storm = directory / "storm.pcap"
    storm.write_bytes(decode_storm_bytes(records=256))
    # Rotation victim: starts as a healthy capture, gets truncated in
    # place once the daemon has consumed past the cut.
    rotate = directory / "rotating.pcap"
    rotate.write_bytes(donor_bytes)
    return crash, storm, rotate


def batch_stream_lines(path) -> list[str]:
    batch = run_batch([BatchItem(name=path.name, path=path)],
                      jobs=2, stream=True)
    expected = []
    for result in batch.results:
        payload = dict(result.payload)
        payload.pop("ingest", None)
        expected.append(json.dumps(payload, sort_keys=True))
    return sorted(expected)


def sink_lines(out, source: str) -> list[str]:
    path = out / "results" / f"{source}.jsonl"
    if not path.exists():
        return []
    return sorted(json.dumps(json.loads(line), sort_keys=True)
                  for line in path.read_text().splitlines())


def run_serve_chaos(directory):
    healthy = write_healthy_captures(directory)
    donor_bytes = healthy[0].read_bytes()
    crash, storm, rotate = write_poisoned_captures(directory,
                                                   donor_bytes)

    fault_plan = FaultPlan((
        FaultSpec(match="crashloop.pcap#*", kind="kill"),))
    resource_faults = None
    if ENOSPC:
        # A windowed disk failure: fault-plan call counters are per
        # source, so arm after the first append to each source (every
        # source has at least one) and fail exactly the next one.
        # One failing call per source keeps the gate deterministic:
        # a parked payload's flush attempt is always that source's
        # call >= 2, past the window — the "disk" has recovered and
        # the flush must land, even when the park happened during the
        # daemon's final post-loop drain.
        resource_faults = ResourceFaultPlan((
            ResourceFaultSpec(kind="enospc", after_calls=1,
                              duration_calls=1),))

    out = directory / "chaos-out"
    daemon = ServeDaemon(ServeConfig(
        out_dir=out,
        captures=[*healthy, crash, storm, rotate],
        workers=2, retries=0, poll_interval=0.05,
        exit_when_idle=True, quiet_seconds=1.0,
        breaker_failures=1, breaker_backoff=0.1, breaker_trips=2,
        fault_plan=fault_plan, resource_faults=resource_faults))

    # Truncate the rotation victim in place once its tailer has read
    # past the cut — do it from the loop's own thread boundary by
    # simply rewriting before run(): the tailer consumes the full
    # file on its first poll, so rewrite *during* the run via a
    # one-shot timer instead.
    import threading

    def truncate_rotating():
        rotate.write_bytes(donor_bytes[:128])

    timer = threading.Timer(0.5, truncate_rotating)
    timer.start()
    try:
        rc = daemon.run()
    finally:
        timer.cancel()

    states = daemon.breakers.states()
    comparisons = {}
    for path in healthy:
        comparisons[path.name] = (sink_lines(out, path.name),
                                  batch_stream_lines(path))
    return {
        "rc": rc,
        "states": states,
        "comparisons": comparisons,
        "counters": daemon.metrics.to_dict()["counters"],
        "health": daemon.metrics.health_state,
    }


def test_serve_chaos_liveness_gate(once, tmp_path):
    # SERVE_CHAOS_OUT redirects the working directory (captures, sink,
    # journal) somewhere CI can upload as a reproducer on failure.
    out_override = os.environ.get("SERVE_CHAOS_OUT")
    workdir = tmp_path
    if out_override:
        workdir = Path(out_override)
        workdir.mkdir(parents=True, exist_ok=True)
    result = once(run_serve_chaos, workdir)
    counters = result["counters"]
    states = result["states"]

    poisoned = {"crashloop.pcap", "storm.pcap", "rotating.pcap"}
    healthy_states = {source: state for source, state in states.items()
                      if source not in poisoned}
    emit(f"Serve chaos ({HEALTHY_SOURCES} healthy + {len(poisoned)} "
         f"poisoned sources, ENOSPC={'on' if ENOSPC else 'off'})", [
        f"exit code {result['rc']}, final health "
        f"{result['health']}",
        "breakers: " + ", ".join(f"{source}={state}"
                                 for source, state in sorted(
                                     states.items())),
        f"flows completed {counters['flows_completed']}, "
        f"cancelled {counters['flows_cancelled']}, "
        f"breaker trips {counters['breaker_trips']}, "
        f"quarantines {counters['breaker_quarantines']}",
        f"sink errors {counters['sink_errors']} (parked+flushed), "
        f"rotations {counters['rotations']}",
        f"healthy sources byte-identical to batch --stream: "
        f"{sum(got == want for got, want in result['comparisons'].values())}"
        f"/{HEALTHY_SOURCES}",
    ])

    # 1. Chaos never kills the daemon.
    assert result["rc"] == 0

    # 2. Quarantine hit exactly the poisoned sources.
    assert states["crashloop.pcap"] == "quarantined"
    assert states["storm.pcap"] == "quarantined"
    assert states["rotating.pcap"] == "quarantined"
    assert all(state == "closed"
               for state in healthy_states.values()), healthy_states

    # 3+4. Healthy output is byte-identical to batch --stream —
    # nothing lost, nothing duplicated, despite the ENOSPC window.
    for source, (got, want) in result["comparisons"].items():
        assert got == want, f"{source} diverged from batch --stream"
    if ENOSPC:
        assert counters["sink_errors"] >= 1
