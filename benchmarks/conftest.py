"""Benchmark harness configuration.

Each benchmark module regenerates one of the paper's tables, figures,
or quantitative claims (see DESIGN.md's experiment index).  The
benchmarked kernel is run once (simulations are deterministic; there
is no statistical noise to average away) and the reproduced artifact
is printed, so running with ``-s`` shows the regenerated table or
figure next to the paper's expectation.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmark kernel exactly once and return its result."""

    def run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def emit(title: str, lines) -> None:
    """Print a reproduced artifact in a recognizable block."""
    print()
    print(f"==== {title} ====")
    for line in lines:
        print(line)
