"""R4 — §9.3 (RECONSTRUCTED): ack-generation delay as RTT noise.

The provided text ends §9's preamble with: "We finish with an analysis
of response delays, namely how long it takes a TCP receiver to
generate its acknowledgements (§9.3).  Variations in response times
can introduce a significant noise term for senders that attempt to
measure round-trip times (RTTs) to high resolution."  §9.3 itself
falls in the truncated region; this bench reconstructs its
measurement.

On a lightly loaded path (no queueing noise), the spread of
sender-side RTT samples above the path floor is almost entirely the
receiver's acking delay:

* every-packet ackers (Linux 1.0): sub-millisecond noise;
* Solaris's 50 ms one-shot timer: delayed acks stamp exactly +50 ms;
* BSD's free-running heartbeat: anything up to +200 ms;
* a consumption-acking BSD receiver with a slow application: the
  reader's schedule leaks into every RTT sample.
"""

from repro.harness.scenarios import Scenario, traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import mbit, seq_ge

from benchmarks.conftest import emit

#: Fat, short path: serialization + queueing ≈ 0 next to ack delays.
QUIET_PATH = Scenario("quiet", bottleneck_bandwidth=mbit(10.0),
                      bottleneck_delay=0.010)


def rtt_samples(trace) -> list[float]:
    """Sender-side RTT samples: first transmission of each segment to
    the first ack covering it (what an RTT-measuring sender gets)."""
    flow = trace.primary_flow()
    reverse = flow.reversed()
    sent: dict[int, float] = {}
    samples = []
    pending: list[tuple[int, float]] = []
    for record in trace:
        if record.flow == flow and record.payload > 0:
            if record.seq not in sent:
                sent[record.seq] = record.timestamp
                pending.append((record.seq_end, record.timestamp))
        elif record.flow == reverse and record.has_ack and not record.is_syn:
            while pending and seq_ge(record.ack, pending[0][0]):
                end, at = pending.pop(0)
                samples.append(record.timestamp - at)
    return samples


def noise_stats(samples: list[float]) -> tuple[float, float]:
    """(p50, p90) of RTT noise = sample − floor."""
    floor = min(samples)
    noise = sorted(s - floor for s in samples)
    return (noise[len(noise) // 2], noise[int(len(noise) * 0.9)])


def run_study():
    rows = []
    cases = [
        ("linux-1.0", {"sender_window": 512}, "every-packet acker"),
        ("solaris-2.4", {"sender_window": 512}, "50 ms one-shot timer"),
        ("reno", {"sender_window": 512},
         "200 ms heartbeat, single-segment rounds"),
        ("reno", {"sender_window": 1024},
         "200 ms heartbeat, paired segments (prompt reader)"),
        ("reno", {"sender_window": 1024, "receiver_buffer": 16384,
                  "consume_rate": 40000.0},
         "200 ms heartbeat, slow reader (consumption acking)"),
    ]
    for implementation, kwargs, description in cases:
        # The BSD heartbeat free-runs from boot: pool several phases,
        # as the paper's many-connection corpus implicitly did.
        samples = []
        phases = ([0.0] if implementation != "reno"
                  else [i * 0.029 for i in range(7)])
        for phase in phases:
            transfer = traced_transfer(
                get_behavior(implementation), QUIET_PATH,
                data_size=51200, heartbeat_phase=phase, **kwargs)
            samples.extend(rtt_samples(transfer.sender_trace))
        p50, p90 = noise_stats(samples)
        rows.append({"implementation": implementation,
                     "description": description,
                     "samples": len(samples), "p50": p50, "p90": p90})
    return rows


def test_r4_ack_generation_noise(once):
    rows = once(run_study)

    lines = [f"{'receiver':14s} {'n':>4s} {'p50 noise':>10s} "
             f"{'p90 noise':>10s}  policy"]
    for row in rows:
        lines.append(f"{row['implementation']:14s} {row['samples']:4d} "
                     f"{row['p50'] * 1e3:9.1f}ms {row['p90'] * 1e3:9.1f}ms"
                     f"  {row['description']}")
    lines.append("(path floor subtracted; a quiet path makes receiver ack "
                 "delay the dominant noise term, §9.3's point)")
    emit("R4: ack-generation delay as RTT-measurement noise "
         "(§9.3, reconstructed)", lines)

    by_description = {r["description"]: r for r in rows}
    linux = by_description["every-packet acker"]
    solaris = by_description["50 ms one-shot timer"]
    bsd_single = by_description["200 ms heartbeat, single-segment rounds"]
    bsd_paired = by_description[
        "200 ms heartbeat, paired segments (prompt reader)"]
    bsd_slow = by_description[
        "200 ms heartbeat, slow reader (consumption acking)"]
    # Shape (§9.1/§9.3): every-packet acking ≈ noiseless; Solaris
    # delayed acks stamp at ~50 ms; the heartbeat injects up to 200 ms
    # when segments arrive singly, but is quiet for prompt pairs; and
    # a slow application leaks its schedule into the samples.
    assert linux["p90"] < 0.005
    assert 0.030 <= solaris["p90"] <= 0.065
    assert bsd_single["p90"] > solaris["p90"]
    assert bsd_single["p90"] <= 0.210
    assert bsd_paired["p90"] < 0.010
    assert bsd_slow["p90"] > bsd_paired["p90"] + 0.010
