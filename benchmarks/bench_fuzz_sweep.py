"""Corpus of horrors — the adversarial fuzz sweep as a standing gate.

tcpanaly's headline robustness claim (§3, §7) is not "it analyzes
clean traces" but "it survived every pathological capture in the wild
corpus": filter drops and duplicates, reordering-heavy paths,
middlebox-mangled headers, torn files.  This benchmark regenerates a
synthetic corpus of exactly such horrors — seeded, so every run sees
the same adversity — and requires the full pipeline to hold the line
on each one: identify the true implementation, refuse honestly,
or quarantine with a *classified* error.  An exception escaping the
pipeline or a confident misidentification on a calibration-clean
trace fails the sweep (and the build).

``TCPANALY_FUZZ_COUNT`` / ``TCPANALY_FUZZ_SEED`` reduce or reseed the
sweep for CI smoke runs; ``TCPANALY_FUZZ_REPRODUCERS`` names a
directory where minimized failure reproducers are written (archived
as CI artifacts on failure).
"""

import os

from repro.fuzz import run_sweep

from benchmarks.conftest import emit

COUNT = int(os.environ.get("TCPANALY_FUZZ_COUNT", "200"))
BASE_SEED = int(os.environ.get("TCPANALY_FUZZ_SEED", "0"))
REPRODUCER_DIR = os.environ.get("TCPANALY_FUZZ_REPRODUCERS",
                                "fuzz-reproducers")


def run_the_sweep():
    return run_sweep(base_seed=BASE_SEED, count=COUNT,
                     reproducer_dir=REPRODUCER_DIR)


def test_corpus_of_horrors_holds_the_line(once):
    report = once(run_the_sweep)

    lines = [f"{'outcome':>24s} {'scenarios':>10s}"]
    for outcome, tally in sorted(report.outcomes.items()):
        lines.append(f"{outcome:>24s} {tally:10d}")
    lines.append(f"{'total':>24s} {report.count:10d}")
    if report.failures:
        lines.append("")
        for failure in report.failures:
            lines.append(f"FAIL seed={failure.plan.seed} "
                         f"{failure.outcome}: {failure.detail}")
            lines.append(f"     {failure.plan.describe()}")
        lines.append(f"minimized reproducers: {REPRODUCER_DIR}/")
    emit(f"Adversarial fuzz sweep ({COUNT} scenarios, "
         f"base seed {BASE_SEED})", lines)

    assert report.passed, (
        f"{len(report.failures)} fuzzer-found bug(s); reproducers "
        f"written to {REPRODUCER_DIR}/ — rerun any one with "
        f"`tcpanaly fuzz --seed <seed> --count 1 --verbose`")
    # The sweep must actually exercise the pipeline, not vacuously
    # pass because every scenario collapsed into discarded packets.
    identified = report.outcomes.get("identified", 0)
    assert identified >= COUNT // 4, report.outcomes
