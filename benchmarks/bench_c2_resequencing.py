"""C2 — §3.1.3: resequencing detection.

The paper found the Solaris 2.3/2.4 packet filter reordered its own
host's traffic in about 20% of traces (two code paths with different
latencies, timestamps applied at filter-processing time), while other
filters almost never resequenced.

We emulate both filter populations across a set of transfers — the
Solaris filter with the two-path injector, a clean BSD-style filter —
and tabulate the fraction of traces tcpanaly flags.
"""

from repro.capture.errors import ResequencingInjector
from repro.capture.filter import PacketFilter
from repro.core.calibrate import calibrate_trace
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbyte

from benchmarks.conftest import emit

TRACES = 10


def run_populations():
    solaris_flagged = 0
    clean_flagged = 0
    events_total = 0
    for seed in range(TRACES):
        solaris_filter = PacketFilter(
            vantage="sender",
            resequencing=ResequencingInjector(seed=seed, jitter=0.003))
        transfer = traced_transfer(get_behavior("solaris-2.4"), "wan",
                                   data_size=kbyte(40), seed=seed,
                                   sender_filter=solaris_filter)
        report = calibrate_trace(transfer.sender_trace,
                                 get_behavior("solaris-2.4"))
        if report.resequencing:
            solaris_flagged += 1
            events_total += len(report.resequencing)

        clean = traced_transfer(get_behavior("solaris-2.4"), "wan",
                                data_size=kbyte(40), seed=seed)
        clean_report = calibrate_trace(clean.sender_trace,
                                       get_behavior("solaris-2.4"))
        if clean_report.resequencing:
            clean_flagged += 1
    return solaris_flagged, clean_flagged, events_total


def test_c2_resequencing_detection(once):
    solaris_flagged, clean_flagged, events_total = once(run_populations)

    emit("C2: resequencing detection (§3.1.3)", [
        f"Solaris-style filter: {solaris_flagged}/{TRACES} traces flagged "
        f"({events_total} events) — paper: ~20% of traces plagued",
        f"clean filter:         {clean_flagged}/{TRACES} traces flagged "
        f"— paper: almost never for other filters",
    ])

    # Shape: the defective filter population is flagged far more often
    # than the clean one, which is never flagged.
    assert solaris_flagged >= 2
    assert clean_flagged == 0
