"""T1 — Table 1: the implementation corpus.

The paper's Table 1 lists, per implementation, the number of traces of
that TCP sending and receiving bulk transfers.  We regenerate the
table from a synthetic corpus: per implementation, a set of 100 KB
transfers across the scenario rotation, each yielding one sender-side
and one receiver-side trace — and assert every transfer completed and
produced analyzable traces.

(The paper's counts — 20,034 sender / 20,043 receiver traces — came
from years of measurement; the corpus generator scales to that size,
but the bench keeps it small enough to run in seconds.)
"""

from repro.harness.corpus import corpus_summary, generate_corpus
from repro.tcp.catalog import CORE_STUDY, CATALOG

from benchmarks.conftest import emit

TRACES_PER_IMPLEMENTATION = 3


def build_corpus():
    entries = list(generate_corpus(
        CORE_STUDY, traces_per_implementation=TRACES_PER_IMPLEMENTATION,
        data_size=51200))
    return entries, corpus_summary(entries)


def test_table1_corpus(once):
    entries, summary = once(build_corpus)

    lines = [f"{'Implementation':16s} {'# Sender':>9s} {'# Receiver':>11s} "
             f"{'Lineage':>8s}"]
    sender_total = receiver_total = 0
    for implementation in CORE_STUDY:
        stats = summary[implementation]
        senders = int(stats["traces"])
        receivers = int(stats["traces"])
        sender_total += senders
        receiver_total += receivers
        lineage = CATALOG[implementation].lineage.value
        lines.append(f"{implementation:16s} {senders:9d} {receivers:11d} "
                     f"{lineage:>8s}")
    lines.append(f"{'Total':16s} {sender_total:9d} {receiver_total:11d}")
    emit("Table 1: TCP implementations studied (synthetic corpus)", lines)

    # Shape: every implementation contributes, and every transfer
    # completed, so each trace is usable for the rest of the study.
    assert set(summary) == set(CORE_STUDY)
    for implementation in CORE_STUDY:
        assert summary[implementation]["completed"] \
            == TRACES_PER_IMPLEMENTATION
