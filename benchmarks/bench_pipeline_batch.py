"""P1 — batch pipeline throughput: sequential vs. parallel corpus runs.

The paper's study ran tcpanaly over ~20,000 traces per side (Table 1);
the batch pipeline is the substrate that makes corpus-scale runs
practical.  This benchmark generates a 40-trace corpus (20 sender +
20 receiver pcaps), batch-analyzes it sequentially (``jobs=1``) and
with a 4-worker process pool, and reports traces/sec for both along
with the parallel speedup — while asserting the two runs produce
byte-identical per-trace results, the pipeline's core determinism
contract.

The >1.5x speedup expectation only applies on hardware with at least
4 usable cores; on smaller machines the speedup is recorded but not
asserted (a process pool cannot beat the clock on one core).
"""

import os

from repro.harness.corpus import write_corpus
from repro.pipeline import corpus_items, result_line, run_batch
from repro.tcp.catalog import CORE_STUDY

from benchmarks.conftest import emit

JOBS = 4
IMPLEMENTATIONS = CORE_STUDY[:10]
PAIRS_PER_IMPLEMENTATION = 2   # 10 impls x 2 pairs = 40 traces


def run_both(corpus_dir):
    write_corpus(corpus_dir, implementations=IMPLEMENTATIONS,
                 traces_per_implementation=PAIRS_PER_IMPLEMENTATION,
                 data_size=20480)
    items = corpus_items(corpus_dir)
    sequential = run_batch(items, jobs=1)
    parallel = run_batch(items, jobs=JOBS)
    return sequential, parallel


def test_pipeline_batch_throughput(once, tmp_path):
    sequential, parallel = once(run_both, tmp_path / "corpus")

    speedup = parallel.throughput / sequential.throughput
    emit("Batch pipeline throughput (40-trace corpus)", [
        f"{'jobs':>6s} {'wall (s)':>9s} {'traces/sec':>11s}",
        f"{sequential.jobs:6d} {sequential.wall_time:9.2f} "
        f"{sequential.throughput:11.1f}",
        f"{parallel.jobs:6d} {parallel.wall_time:9.2f} "
        f"{parallel.throughput:11.1f}",
        f"speedup at {JOBS} jobs: {speedup:.2f}x "
        f"({os.cpu_count()} core(s) visible)",
    ])

    # Determinism: the parallel run's per-trace results are
    # byte-identical to the sequential run's.
    assert [result_line(r) for r in sequential.results] \
        == [result_line(r) for r in parallel.results]
    assert len(sequential.results) \
        == 2 * len(IMPLEMENTATIONS) * PAIRS_PER_IMPLEMENTATION

    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    if cores >= JOBS:
        assert speedup > 1.5
