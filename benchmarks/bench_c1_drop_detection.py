"""C1 — §3.1.1: packet-filter drop detection.

The paper's discipline: filters cannot be trusted to report their own
drops (reports may be absent, stale, or false), so tcpanaly infers
them from self-consistency checks — while *never* mistaking a genuine
network drop for a filter drop.

We sweep injected filter-drop rates (with a lying drop report), run
the check battery at both vantage points, and tabulate: detection
events vs. true drops, plus the false-positive rate on drop-free
filters over genuinely lossy networks.
"""

from repro.capture.errors import DropInjector
from repro.capture.filter import PacketFilter
from repro.core.calibrate import calibrate_trace
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbyte

from benchmarks.conftest import emit


def run_sweep():
    rows = []
    for rate in (0.0, 0.02, 0.05, 0.10):
        for seed in range(3):
            sender_filter = PacketFilter(
                vantage="sender",
                drops=DropInjector(rate=rate, seed=seed,
                                   report_style="zero"))
            receiver_filter = PacketFilter(
                vantage="receiver",
                drops=DropInjector(rate=rate, seed=seed + 100,
                                   report_style="none"))
            transfer = traced_transfer(
                get_behavior("reno"), "wan-lossy", data_size=kbyte(50),
                seed=seed, sender_filter=sender_filter,
                receiver_filter=receiver_filter)
            sender_report = calibrate_trace(transfer.sender_trace,
                                            get_behavior("reno"))
            receiver_report = calibrate_trace(transfer.receiver_trace,
                                              get_behavior("reno"))
            rows.append({
                "rate": rate, "seed": seed,
                "sender_true": sender_filter.drops.true_drops,
                "sender_found": len(sender_report.drop_evidence),
                "receiver_true": receiver_filter.drops.true_drops,
                "receiver_found": len(receiver_report.drop_evidence),
            })
    return rows


def test_c1_filter_drop_detection(once):
    rows = once(run_sweep)

    lines = [f"{'rate':>6s} {'snd true':>9s} {'snd found':>10s} "
             f"{'rcv true':>9s} {'rcv found':>10s}"]
    for row in rows:
        lines.append(f"{row['rate']:6.2f} {row['sender_true']:9d} "
                     f"{row['sender_found']:10d} {row['receiver_true']:9d} "
                     f"{row['receiver_found']:10d}")
    lines.append("(network loss rate 3% throughout: zero-rate rows show "
                 "genuine drops are never misattributed to the filter)")
    emit("C1: filter-drop self-consistency checks (§3.1.1)", lines)

    # Shape: no false positives at rate 0; detection grows with the
    # injected rate and finds a solid fraction of real filter drops.
    for row in rows:
        if row["rate"] == 0.0:
            assert row["sender_found"] == 0
            assert row["receiver_found"] == 0
    heavy = [r for r in rows if r["rate"] >= 0.05]
    found = sum(r["sender_found"] + r["receiver_found"] for r in heavy)
    true = sum(r["sender_true"] + r["receiver_true"] for r in heavy)
    assert found >= 0.25 * true     # cumulative acks mask some ack drops
    assert found > 0
