"""F5 — Figure 5: broken Solaris retransmission timer (§8.6).

The paper's figure shows a California→Netherlands transfer
(RTT ≈ 680 ms): the Solaris sender's ~300 ms initial RTO fires before
any ack can possibly return, and because an ack for retransmitted
data resets the timer to its erroneously small value, the RTO never
adapts — "the Solaris TCP sends almost as many retransmissions as new
packets, yet each retransmission is completely unnecessary!"

We run Solaris 2.4 and Reno over the same 680 ms path, regenerate the
sequence plot (every data packet sent twice — the doubled marks of
the figure), and check the shape: Solaris's retransmissions number
close to its new-data packets, all needless (zero actual loss), while
Reno retransmits nothing.  The SYN, which uses a separate timer, is
not retransmitted (the paper notes exactly this).
"""

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.core.sender.analyzer import analyze_sender
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit


def run_figure5():
    solaris = traced_transfer(get_behavior("solaris-2.4"), "transatlantic",
                              data_size=51200)
    reno = traced_transfer(get_behavior("reno"), "transatlantic",
                           data_size=51200)
    analysis = analyze_sender(solaris.sender_trace,
                              get_behavior("solaris-2.4"))
    return solaris, reno, analysis


def test_fig5_solaris_premature_retransmission(once):
    solaris, reno, analysis = once(run_figure5)

    sender = solaris.result.sender
    trace = solaris.sender_trace
    flow = trace.primary_flow()
    syn_count = sum(1 for r in trace
                    if r.flow == flow and r.is_syn)
    bottleneck = solaris.result.path.forward_bottleneck
    true_drops = bottleneck.stats_loss_drops + bottleneck.stats_queue_drops
    plot = sequence_plot(trace, title="Figure 5: broken Solaris "
                         "retransmission, RTT = 680 msec")
    emit("Figure 5: broken Solaris retransmission behavior", [
        render_ascii_plot(plot, width=70, height=18),
        f"path RTT: {solaris.scenario.rtt * 1e3:.0f} ms "
        f"(paper: ~680 ms); initial RTO ≈ 300 ms",
        f"Solaris: {sender.stats_data_packets} data packets, "
        f"{sender.stats_retransmissions} retransmissions, "
        f"{sender.stats_timeouts} timeouts",
        f"  actual network drops: {true_drops} "
        f"(every retransmission unnecessary)",
        f"  SYN transmissions: {syn_count} "
        f"(paper: the SYN uses a different timer and is not re-sent)",
        f"Reno on the same path: "
        f"{reno.result.sender.stats_retransmissions} retransmissions",
        f"analyzer: {analysis.summary()}",
    ])

    # Shape: a large fraction of Solaris packets are retransmissions
    # ("almost as many retransmissions as new packets"), all needless;
    # Reno sends none; the SYN is never retransmitted.
    assert true_drops == 0
    assert sender.stats_retransmissions >= 0.3 * (
        sender.stats_data_packets - sender.stats_retransmissions)
    assert reno.result.sender.stats_retransmissions == 0
    assert syn_count == 1
    assert analysis.violation_count == 0
    # The retransmissions are classified as timer expirations, not as
    # loss recovery.
    assert analysis.counts_by_kind().get("timeout", 0) \
        >= sender.stats_timeouts * 0.8
