"""C4 — §5/§6.1: implementation identification (fit sorting).

tcpanaly runs every known implementation against a trace and sorts
them into close / imperfect / clearly-incorrect fits using response
delays and window violations.  We regenerate the identification
matrix over the behaviorally distinct stacks on a provocative (lossy)
path: for every trace, the true implementation must fall in the close
set, and stacks of other lineages must be excluded.

Reno-derivative *minor* variants are indistinguishable unless their
specific bug is provoked (the paper's bugs were "rarely manifested"),
so the matrix is over distinguishable families.
"""

from repro.core.fit import identify_implementation
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit

#: Behaviorally distinct families and one representative each.
FAMILIES = ["reno", "tahoe", "linux-1.0", "solaris-2.4", "trumpet-2.0b",
            "linux-2.0.30"]

#: Labels an identification may legitimately rank best for each true
#: implementation: sender analysis cannot split behaviors that differ
#: only in receiver acking (solaris 2.3 vs 2.4, §8.6) or in bugs the
#: trace did not provoke (the Reno-derivative minor variants, §8.3) —
#: and permissive models (e.g. one with a *larger* window) can remain
#: "close" because a violation only catches sending *more* than the
#: model allows.
ACCEPTABLE_BEST = {
    "reno": {"reno", "net3", "bsdi-1.1", "bsdi-2.0", "bsdi-2.1",
             "hpux-9.05", "hpux-10", "irix-5.2", "irix-6.2", "netbsd-1.0",
             "osf1-2.0", "osf1-3.2", "windows-95", "windows-NT"},
    "tahoe": {"tahoe", "sunos-4.1.3"},
    "linux-1.0": {"linux-1.0"},
    "solaris-2.4": {"solaris-2.3", "solaris-2.4"},
    "trumpet-2.0b": {"trumpet-2.0b"},
    "linux-2.0.30": {"linux-2.0.30", "reno", "net3", "osf1-1.3a",
                     "osf1-2.0", "osf1-3.2", "bsdi-1.1", "bsdi-2.0",
                     "bsdi-2.1", "windows-95", "windows-NT", "irix-6.2",
                     "netbsd-1.0"},
}

#: Implementations that must NOT appear among the close fits, per true
#: implementation — the cross-lineage separations the paper stresses.
MUST_EXCLUDE = {
    "reno": {"tahoe", "sunos-4.1.3", "linux-1.0", "trumpet-2.0b",
             "solaris-2.3", "solaris-2.4"},
    "tahoe": {"linux-1.0", "trumpet-2.0b", "reno", "net3",
              "solaris-2.3", "solaris-2.4"},
    "linux-1.0": {"reno", "tahoe", "solaris-2.4", "trumpet-2.0b",
                  "linux-2.0.30"},
    "solaris-2.4": {"reno", "tahoe", "linux-1.0", "trumpet-2.0b"},
    "trumpet-2.0b": {"reno", "tahoe", "linux-1.0", "solaris-2.4"},
    "linux-2.0.30": {"linux-1.0", "trumpet-2.0b", "solaris-2.3",
                     "solaris-2.4"},
}


def run_matrix():
    matrix = {}
    for truth in FAMILIES:
        transfer = traced_transfer(get_behavior(truth), "wan-lossy",
                                   data_size=51200, seed=3)
        report = identify_implementation(transfer.sender_trace)
        close = {fit.implementation for fit in report.close}
        matrix[truth] = (close, report.best.implementation)
    return matrix


def test_c4_identification_matrix(once):
    matrix = once(run_matrix)

    lines = [f"{'true implementation':20s} {'best fit':16s} close fits"]
    for truth, (close, best) in matrix.items():
        lines.append(f"{truth:20s} {best:16s} {', '.join(sorted(close))}")
    lines.append("(paper: correct implementations give small response "
                 "delays and no violations; incorrect ones do not)")
    emit("C4: implementation identification matrix (§6.1)", lines)

    for truth, (close, best) in matrix.items():
        # The truth is always among the close fits ...
        assert truth in close, f"{truth} not identified"
        # ... the top-ranked fit is an acceptable equivalent ...
        assert best in ACCEPTABLE_BEST[truth], f"{truth} best-fit {best}"
        # ... and truly different lineages are excluded.
        spurious = close & MUST_EXCLUDE[truth]
        assert not spurious, f"{truth}: spurious close fits {spurious}"
