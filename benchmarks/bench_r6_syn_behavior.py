"""R6 — §2 (RECONSTRUCTED): Stevens' web-server SYN observations.

§2 summarizes [St96]'s analysis of connections arriving at a busy
Net/3 web server: "almost 10% of all SYN packets were retransmitted;
some remote TCPs sent storms of up to 30 SYNs/sec all requesting the
same connection; and some remote TCPs did not correctly back off
their connection-establishment retry timer."

We reconstruct the server-side view: a population of clients connects
across paths that lose some handshakes; one client's SYN timer is
broken (no backoff, sub-second retry).  The server-side trace then
shows all three findings.
"""

from dataclasses import replace

from repro.capture.filter import PacketFilter, attach_at_host
from repro.netsim.engine import Engine
from repro.netsim.link import DeterministicLoss
from repro.netsim.network import build_path
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte

from benchmarks.conftest import emit

#: 20 clients; for three of them the network eats the SYN-ack (and for
#: one, the second SYN-ack too) — so the *server* sees the client's
#: retransmitted SYNs, exactly Stevens' vantage.
CLIENTS = 20
SYNACK_EATERS = {4: [1], 11: [1], 17: [1, 2]}

#: The [St96] broken client: retries ~every 40 ms with no backoff.
BROKEN_CLIENT = replace(
    get_behavior("trumpet-2.0b"),
    initial_syn_timeout=0.040, syn_backoff_factor=1.0, max_syn_retries=40)


def client_syn_times(index: int) -> list[float]:
    """Run one client's connection; return its SYN send times as the
    server-side filter records them."""
    engine = Engine()
    drops = SYNACK_EATERS.get(index, [])
    loss = DeterministicLoss(drop_nth=drops) if drops else None
    path = build_path(engine, reverse_loss=loss)
    packet_filter = PacketFilter(vantage="receiver")
    attach_at_host(path.receiver, packet_filter)
    behavior = get_behavior(("reno", "solaris-2.4", "linux-1.0",
                             "windows-95")[index % 4])
    run_bulk_transfer(behavior, data_size=kbyte(4), path=path,
                      max_duration=60)
    return [r.timestamp for r in packet_filter.trace() if r.is_syn
            and not r.has_ack]


def broken_client_syn_times() -> list[float]:
    """The storm: the server is unreachable; the broken client fires."""
    engine = Engine()
    path = build_path(engine,
                      forward_loss=DeterministicLoss(
                          predicate=lambda s: "drop"))
    packet_filter = PacketFilter(vantage="sender")
    attach_at_host(path.sender, packet_filter)
    run_bulk_transfer(BROKEN_CLIENT, data_size=1024, path=path,
                      max_duration=60)
    return [r.timestamp for r in packet_filter.trace() if r.is_syn]


def run_study():
    total_syns = 0
    retransmitted = 0
    backoff_ok = 0
    retriers = 0
    for index in range(CLIENTS):
        times = client_syn_times(index)
        total_syns += len(times)
        retransmitted += max(len(times) - 1, 0)
        if len(times) >= 3:
            retriers += 1
            gaps = [b - a for a, b in zip(times, times[1:])]
            if all(later > earlier * 1.5
                   for earlier, later in zip(gaps, gaps[1:])):
                backoff_ok += 1
    storm = broken_client_syn_times()
    storm_rate = (len(storm) - 1) / (storm[-1] - storm[0])
    return (total_syns, retransmitted, retriers, backoff_ok, storm_rate,
            len(storm))


def test_r6_syn_behavior(once):
    (total_syns, retransmitted, retriers, backoff_ok, storm_rate,
     storm_count) = once(run_study)

    fraction = retransmitted / total_syns
    emit("R6: web-server SYN observations (§2 / [St96], reconstructed)", [
        f"SYN packets arriving at the server: {total_syns}, of which "
        f"{retransmitted} retransmitted ({fraction:.0%}) — paper: "
        f"almost 10%",
        f"clients retrying >=2 times: {retriers}; with correct "
        f"exponential backoff: {backoff_ok}",
        f"broken client: {storm_count} SYNs at {storm_rate:.0f}/sec for "
        f"one connection — paper: storms of up to 30 SYNs/sec",
    ])

    # Shape: retransmitted-SYN share in the ~10% regime; well-behaved
    # clients back off; the broken client's rate reaches tens/sec.
    assert 0.05 <= fraction <= 0.30
    assert backoff_ok == retriers
    assert storm_rate >= 20
    assert storm_count >= 20
