"""R2 — §2+§9 (RECONSTRUCTED): receiver-policy identification, and the
active-probing combination.

Two of the paper's threads meet here:

* §9's receiver analysis characterizes acking policies (heartbeat vs
  interval timer vs every-packet, aggregation thresholds, the 2.3
  hole-fill bug);
* §2 closes with: "one can combine active techniques, for controlling
  the stimuli seen by a TCP implementation, with automated analysis of
  traces of the results."

Part one identifies acking-policy families from passive bulk-transfer
traces.  Part two applies the suggested combination: a scripted
small-hole-fill probe — a stimulus passive traces essentially never
contain — separates Solaris 2.3 from 2.4, the pair the paper says
differ *only* in a minor acking-policy bug (§8.6), which sender-side
analysis cannot split (see C4).
"""

from repro.core.fit import identify_receiver
from repro.harness.probing import probe_hole_fill
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit

#: Passive identification cases: representative per acking family.
PASSIVE = ("reno", "linux-1.0", "solaris-2.4", "osf1-1.3a")

#: Policy families: labels indistinguishable from a passive receiver
#: trace (their acking machinery is literally identical).
FAMILY = {
    "reno": "heartbeat-200ms/every-2",
    "linux-1.0": "every-packet",
    "solaris-2.4": "interval-50ms",
    "osf1-1.3a": "heartbeat-200ms/every-3",
}


def run_study():
    passive = {}
    for truth in PASSIVE:
        # The 50 ms interval policy only shows on links slow enough
        # that pairs cannot beat the timer (C7's finding): probe
        # Solaris where its policy is visible.
        scenario = "modem-56k" if truth.startswith("solaris") else "wan"
        transfer = traced_transfer(get_behavior(truth), scenario,
                                   data_size=51200)
        fits = identify_receiver(transfer.receiver_trace)
        passive[truth] = [f.implementation for f in fits
                          if f.category == "close"]

    probed = {}
    for truth in ("solaris-2.3", "solaris-2.4"):
        trace = probe_hole_fill(get_behavior(truth))
        fits = identify_receiver(
            trace, {label: get_behavior(label)
                    for label in ("solaris-2.3", "solaris-2.4")})
        probed[truth] = [(f.implementation, f.category) for f in fits]
    return passive, probed


def test_r2_receiver_identification(once):
    passive, probed = once(run_study)

    lines = ["passive bulk-transfer traces (policy families):"]
    for truth, close in passive.items():
        lines.append(f"  {truth:14s} ({FAMILY[truth]}): close fits = "
                     f"{', '.join(close[:6])}"
                     f"{' ...' if len(close) > 6 else ''}")
    lines.append("")
    lines.append("active probe (small hole fill) — the §2 combination:")
    for truth, fits in probed.items():
        lines.append(f"  true {truth}: " + ", ".join(
            f"{implementation}={category}"
            for implementation, category in fits))
    lines.append("(the paper: 2.3 and 2.4 differ only in an acking-policy "
                 "bug; sender analysis cannot split them — the probe can)")
    emit("R2: receiver-policy identification (§2+§9, reconstructed)", lines)

    # Shape: passive identification narrows to the right policy family.
    assert "reno" in passive["reno"]
    assert "solaris-2.4" not in passive["reno"]
    assert "linux-1.0" not in passive["reno"]
    assert set(passive["linux-1.0"]) <= {"linux-1.0", "linux-2.0.30",
                                         "trumpet-2.0b"}
    assert set(passive["solaris-2.4"]) <= {"solaris-2.3", "solaris-2.4"}
    assert passive["osf1-1.3a"] == ["osf1-1.3a"]
    # The active probe splits what the passive traces cannot.
    for truth, fits in probed.items():
        ranking = dict(fits)
        assert ranking[truth] == "close"
        other = ("solaris-2.4" if truth == "solaris-2.3"
                 else "solaris-2.3")
        assert ranking[other] != "close"
