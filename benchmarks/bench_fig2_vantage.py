"""F2 — Figure 2: vantage-point ambiguity.

The paper's Figure 2 shows a sender-side trace in which the filter
records an ack covering sequence 54,273 — and *then* records the TCP
retransmitting 52,737 and 53,249, data that ack already covered.
Neither the filter nor the TCP erred: the filter's vantage point is
slightly upstream of the TCP's processing, so the ack was on record
before the TCP acted on its older state (§3.2).

We reproduce the situation by taking a simulated trace containing a
timeout retransmission and moving the covering ack's record to its
wire-arrival position just ahead of the retransmission — exactly the
filter-sees-it-first timing the paper describes.  The assertions
check tcpanaly's coping machinery: the *lazy* liberation analyzer
explains the trace completely, while an eager design (feed every
recorded ack before explaining each send — the abandoned one-pass
approach of §4) declares an impossible retransmission.
"""

from repro.core.calibrate import calibrate_trace
from repro.core.sender.analyzer import analyze_sender
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.trace.record import Trace
from repro.units import seq_ge

from benchmarks.conftest import emit


def make_figure2_trace():
    """A tahoe trace whose covering ack is recorded just before the
    timeout retransmission it covers (filter upstream of the TCP)."""
    transfer = traced_transfer(get_behavior("tahoe"), "wan-lossy",
                               data_size=51200, seed=3)
    trace = transfer.sender_trace
    flow = trace.primary_flow()
    records = list(trace.records)

    # Locate the first retransmission (a data packet revisiting old
    # sequence space) and the first ack after it covering its data.
    highest = None
    rexmit_index = None
    for i, record in enumerate(records):
        if record.flow != flow or record.payload == 0:
            continue
        if highest is not None and seq_ge(highest, record.seq_end):
            rexmit_index = i
            break
        highest = record.seq_end if highest is None else max(
            highest, record.seq_end)
    assert rexmit_index is not None, "no retransmission in the base trace"
    rexmit = records[rexmit_index]
    ack_index = next(
        i for i in range(rexmit_index + 1, len(records))
        if records[i].flow == flow.reversed() and records[i].has_ack
        and seq_ge(records[i].ack, rexmit.seq_end))

    # Record the ack at its wire-arrival position: just before the
    # retransmission the (slow) TCP emitted from its older state.
    ack = records.pop(ack_index)
    early = ack.with_timestamp(rexmit.timestamp - 0.0005)
    records.insert(rexmit_index, early)
    edited = Trace(records=records, vantage="sender",
                   filter_name=trace.filter_name,
                   reported_drops=trace.reported_drops)
    return edited, rexmit_index


def eager_first_inconsistency(trace):
    """The abandoned §4 one-pass design: process every recorded ack
    before each data packet; report the first impossible send."""
    from repro.core.sender.analyzer import (
        _Replay, SenderAnalysis, extract_pass_one)
    pass_one = extract_pass_one(trace)
    behavior = get_behavior("tahoe")
    state = _Replay(pass_one, behavior,
                    SenderAnalysis("tahoe", behavior, pass_one.facts))
    for record in state.data:
        while state.acks_available_by(record.timestamp):
            state.feed_ack()
        classification = state.try_explain(record)
        if classification is None:
            return record
        state.apply(classification)
    return None


def run_figure2():
    trace, rexmit_index = make_figure2_trace()
    lazy = analyze_sender(trace, get_behavior("tahoe"))
    calibration = calibrate_trace(trace, get_behavior("tahoe"))
    eager_failure = eager_first_inconsistency(trace)
    return trace, rexmit_index, lazy, calibration, eager_failure


def test_fig2_vantage_point(once):
    trace, rexmit_index, lazy, calibration, eager_failure = once(run_figure2)

    base = trace.start_time
    excerpt = [
        "  " + trace.records[i].describe(base)
        + (" <-- ack recorded first" if i == rexmit_index else "")
        + (" <-- 'impossible' retransmission" if i == rexmit_index + 1
           else "")
        for i in range(max(rexmit_index - 3, 0),
                       min(rexmit_index + 4, len(trace.records)))
    ]
    emit("Figure 2: vantage-point ambiguity", excerpt + [
        f"lazy (tcpanaly) analysis: {lazy.summary()}",
        f"eager one-pass analysis: first inconsistency at "
        f"{'none' if eager_failure is None else eager_failure.describe(base)}",
        f"calibration: {calibration.summary()}",
        "(paper: the ambiguity forced abandoning one-pass generic "
        "analysis, §4)",
    ])

    # Shape: tcpanaly's pending-liberation design absorbs the
    # inversion; the eager design cannot explain the retransmission.
    assert lazy.violation_count == 0
    assert eager_failure is not None
    assert not calibration.drop_evidence
