"""P2 — fault-tolerant pipeline: supervised overhead and chaos survival.

The paper's corpus study only worked because tcpanaly survived every
pathological trace in ~40,000 wild captures; a single hang or crash
restarting a multi-day run would have sunk it.  This benchmark prices
that resilience and proves it under fire:

1. **Supervision overhead** — the same healthy corpus analyzed by the
   plain in-process path (``jobs=1``) and by the supervised worker
   pool, asserting byte-identical results and reporting the
   throughput cost of crash/timeout supervision.

2. **Chaos survival** — the supervised run repeated with the
   fault-injection harness killing one worker, hanging one trace past
   the timeout, and corrupting two inputs, asserting the run completes
   with exactly the injected failures quarantined (and every healthy
   trace untouched, byte for byte).

``TCPANALY_BENCH_TRACES`` / ``TCPANALY_BENCH_SIZE`` shrink the corpus
for CI smoke runs.
"""

import os

from repro.harness.corpus import write_corpus
from repro.harness.faults import FaultPlan, FaultSpec
from repro.pipeline import corpus_items, result_line, run_batch
from repro.tcp.catalog import CORE_STUDY

from benchmarks.conftest import emit

JOBS = 4
PAIRS = int(os.environ.get("TCPANALY_BENCH_TRACES", "2"))
DATA_SIZE = int(os.environ.get("TCPANALY_BENCH_SIZE", "20480"))
IMPLEMENTATIONS = CORE_STUDY[:10]


def run_all(corpus_dir):
    write_corpus(corpus_dir, implementations=IMPLEMENTATIONS,
                 traces_per_implementation=PAIRS, data_size=DATA_SIZE)
    items = corpus_items(corpus_dir)
    baseline = run_batch(items, jobs=1)
    supervised = run_batch(items, jobs=JOBS, timeout=120.0)

    victims = {
        "crash": items[1].name,
        "timeout": items[len(items) // 3].name,
        "decode-a": items[len(items) // 2].name,
        "decode-b": items[-2].name,
    }
    plan = FaultPlan(specs=(
        FaultSpec(match=victims["crash"], kind="kill"),
        FaultSpec(match=victims["timeout"], kind="hang",
                  hang_seconds=300.0),
        FaultSpec(match=victims["decode-a"], kind="corrupt"),
        FaultSpec(match=victims["decode-b"], kind="corrupt",
                  corrupt_bytes=b"\x00\x00\x00\x00"),
    ))
    chaos = run_batch(items, jobs=JOBS, timeout=2.0, retries=1,
                      fault_plan=plan)
    return baseline, supervised, chaos, victims


def test_resilience_overhead_and_chaos_survival(once, tmp_path):
    baseline, supervised, chaos, victims = once(run_all, tmp_path / "corpus")

    overhead = baseline.throughput / supervised.throughput
    emit(f"Fault-tolerant pipeline ({len(baseline.results)}-trace corpus)", [
        f"{'mode':>12s} {'jobs':>5s} {'wall (s)':>9s} {'traces/sec':>11s}",
        f"{'in-process':>12s} {baseline.jobs:5d} "
        f"{baseline.wall_time:9.2f} {baseline.throughput:11.1f}",
        f"{'supervised':>12s} {supervised.jobs:5d} "
        f"{supervised.wall_time:9.2f} {supervised.throughput:11.1f}",
        f"{'chaos':>12s} {chaos.jobs:5d} "
        f"{chaos.wall_time:9.2f} {chaos.throughput:11.1f}",
        f"supervision cost: {overhead:.2f}x the in-process wall-clock "
        f"at equal work ({JOBS} workers)",
        f"chaos quarantined: 1 crash, 1 timeout, 2 decode "
        f"out of {len(chaos.results)} traces",
    ])

    # Supervision changes nothing about the results themselves.
    assert [result_line(r) for r in supervised.results] \
        == [result_line(r) for r in baseline.results]

    # Chaos: the run completed, every item accounted for exactly once,
    # exactly the injected failures quarantined with the right kinds.
    assert sorted(r.name for r in chaos.results) \
        == sorted(r.name for r in baseline.results)
    quarantined = {r.name: r.payload["error_kind"]
                   for r in chaos.results if "error" in r.payload}
    assert quarantined == {
        victims["crash"]: "crash",
        victims["timeout"]: "timeout",
        victims["decode-a"]: "decode",
        victims["decode-b"]: "decode",
    }

    # And every healthy trace is byte-identical to the fault-free run.
    clean = {r.name: result_line(r) for r in baseline.results}
    for result in chaos.results:
        if result.name not in quarantined:
            assert result_line(result) == clean[result.name]
