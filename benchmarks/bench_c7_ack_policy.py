"""C7 — §9.1: delayed-ack policy vs. link speed.

The paper works out when a receiver's delay timer defeats ack
aggregation: with timer *d*, path rate *b*, packet size *s*, two
full-sized packets cannot arrive within the timer whenever
``2*s/b > d`` — so every in-sequence ack is a delayed ack, and the
sender waits an extra ~d per two packets.

With s = 512 and d = 50 ms (Solaris) the per-packet-ack regime covers
rates below ~20.5 KB/s — including 56 and 64 kbit/s links.  With the
BSD 200 ms heartbeat the bound is ~5.1 KB/s, below common link speeds.

We sweep link speeds with both receivers and measure the delayed-ack
fraction, locating each policy's crossover.
"""

from repro.core.receiver.analyzer import analyze_receiver
from repro.harness.scenarios import Scenario, traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbit

from benchmarks.conftest import emit

#: Link speeds in kbit/s spanning both predicted crossovers.
SPEEDS = (28, 56, 64, 128, 256, 512)


def delayed_fraction(implementation: str, speed_kbit: float) -> float:
    scenario = Scenario(f"link-{speed_kbit}",
                        bottleneck_bandwidth=kbit(speed_kbit),
                        bottleneck_delay=0.020)
    transfer = traced_transfer(get_behavior(implementation), scenario,
                               data_size=30720)
    analysis = analyze_receiver(transfer.receiver_trace,
                                get_behavior(implementation))
    counts = analysis.counts_by_kind()
    data_acks = sum(counts.get(k, 0)
                    for k in ("delayed", "normal", "stretch"))
    return counts.get("delayed", 0) / data_acks if data_acks else 0.0


def run_sweep():
    table = {}
    for speed in SPEEDS:
        table[speed] = {
            "solaris-2.4": delayed_fraction("solaris-2.4", speed),
            "reno": delayed_fraction("reno", speed),
        }
    return table


def test_c7_ack_timer_vs_link_speed(once):
    table = once(run_sweep)

    lines = [f"{'kbit/s':>7s} {'KB/s':>7s} {'solaris 50ms':>13s} "
             f"{'bsd 200ms':>10s}"]
    for speed in SPEEDS:
        row = table[speed]
        lines.append(f"{speed:7d} {speed / 8:7.1f} "
                     f"{row['solaris-2.4']:13.2f} {row['reno']:10.2f}")
    lines.append("(paper: a 50 ms timer acks every packet below "
                 "~20.5 KB/s — covering 56/64 kbit links; a 200 ms timer's "
                 "bound is ~5.1 KB/s, below common links)")
    emit("C7: delayed-ack fraction vs link speed (§9.1)", lines)

    # Shape: Solaris acks (almost) every packet at 56/64 kbit but not
    # at 256+ kbit; BSD aggregates normally even at 56 kbit.  The
    # 28 kbit row is in BOTH policies' per-packet regime.
    assert table[56]["solaris-2.4"] >= 0.9
    assert table[64]["solaris-2.4"] >= 0.9
    assert table[512]["solaris-2.4"] <= 0.3
    assert table[56]["reno"] <= 0.4
    # At 28 kbit even BSD mostly acks single packets — though its
    # free-running heartbeat (unlike a per-arrival timer) still
    # aggregates a pair whenever the arrival phase lines up.
    assert table[28]["reno"] >= 0.6
    # The crossover ordering: Solaris's per-packet regime extends to
    # much faster links than BSD's.
    solaris_crossover = max(s for s in SPEEDS
                            if table[s]["solaris-2.4"] >= 0.9)
    bsd_crossover = max((s for s in SPEEDS if table[s]["reno"] >= 0.6),
                        default=0)
    assert solaris_crossover > bsd_crossover
