"""I1 — identification engine vs the exhaustive candidate loop.

Identification is the tool's hottest path: the exhaustive loop runs a
full pass-one + replay per catalog entry.  The engine
(:mod:`repro.core.engine`) shares pass one across candidates, replays
each sender/receiver equivalence class once, prefilters statically
impossible candidates, and aborts replays whose violation lower bound
already saturates the rank key.

This benchmark runs **both** paths on the same wan-lossy ~1 MB
transfer and, in the same run:

* asserts the engine's ranking (implementation, category) and every
  non-aborted score are identical to the exhaustive path — the
  speedup is only meaningful if the answer is the same;
* emits records/sec for both and the speedup;
* gates the sender-side speedup at ``IDENT_BENCH_MIN_SPEEDUP``
  (default 2x);
* writes ``BENCH_identification.json`` so CI can archive the perf
  trajectory.

CI runs a reduced configuration via ``IDENT_BENCH_SIZE`` and
``IDENT_BENCH_MIN_SPEEDUP``.
"""

import json
import os
import time

import pytest

from repro.core.engine import IdentificationEngine
from repro.core.fit import identify_implementation, identify_receiver
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.trace import columns as trace_columns

from benchmarks.conftest import emit

DATA_SIZE = int(os.environ.get("IDENT_BENCH_SIZE", str(1_048_576)))
MIN_SPEEDUP = float(os.environ.get("IDENT_BENCH_MIN_SPEEDUP", "2.0"))
RESULT_FILE = os.environ.get("IDENT_BENCH_RESULT",
                             "BENCH_identification.json")


@pytest.fixture(scope="module")
def big_transfer():
    return traced_transfer(get_behavior("reno"), "wan-lossy",
                           data_size=DATA_SIZE, seed=2)


def timed(function, *args):
    """Best-of-two wall time (the second run sees warm caches)."""
    best = float("inf")
    result = None
    for _ in range(2):
        start = time.perf_counter()
        result = function(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def ranking(fits):
    return [(fit.implementation, fit.category) for fit in fits]


def test_identification_engine_equivalence_and_speedup(big_transfer):
    trace = big_transfer.sender_trace
    engine = IdentificationEngine()

    exhaustive, exhaustive_s = timed(identify_implementation, trace)
    engine_report, engine_s = timed(engine.identify_sender, trace)

    # Equivalence first: identical ranking and categories, identical
    # scores wherever the engine completed the replay.
    assert ranking(engine_report.fits) == ranking(exhaustive.fits)
    exhaustive_scores = {fit.implementation: fit.score
                         for fit in exhaustive.fits}
    aborted = 0
    for fit in engine_report.fits:
        if fit.aborted or fit.pruned_reason:
            aborted += 1
            continue
        assert fit.score == exhaustive_scores[fit.implementation]

    # Receiver side: same contract, full score equality (no aborts).
    receiver_trace = big_transfer.receiver_trace
    exhaustive_r, exhaustive_r_s = timed(identify_receiver, receiver_trace)
    engine_r, engine_r_s = timed(engine.identify_receiver, receiver_trace)
    assert [(f.implementation, f.category, f.score) for f in engine_r] \
        == [(f.implementation, f.category, f.score) for f in exhaustive_r]

    speedup = exhaustive_s / engine_s
    receiver_speedup = exhaustive_r_s / engine_r_s

    # Provenance: record which trace backend actually ran, and measure
    # the engine's throughput on the other backend too so the JSON
    # carries a per-backend comparison, not an unverifiable label.
    backend = trace_columns.active_backend()
    backend_rates = {backend: round(len(trace) / engine_s)}
    if backend == "numpy":
        trace_columns.set_backend("python")
        try:
            trace._columns = None
            _, fallback_s = timed(IdentificationEngine().identify_sender,
                                  trace)
        finally:
            trace_columns.set_backend(None)
            trace._columns = None
        backend_rates["python"] = round(len(trace) / fallback_s)

    payload = {
        "backend": backend,
        "backend_engine_records_per_s": backend_rates,
        "data_size": DATA_SIZE,
        "sender_records": len(trace),
        "receiver_records": len(receiver_trace),
        "candidates": len(engine.candidates),
        "sender": {
            "exhaustive_s": round(exhaustive_s, 4),
            "engine_s": round(engine_s, 4),
            "speedup": round(speedup, 2),
            "exhaustive_records_per_s": round(len(trace) / exhaustive_s),
            "engine_records_per_s": round(len(trace) / engine_s),
            "aborted_or_pruned": aborted,
        },
        "receiver": {
            "exhaustive_s": round(exhaustive_r_s, 4),
            "engine_s": round(engine_r_s, 4),
            "speedup": round(receiver_speedup, 2),
        },
        "min_speedup_gate": MIN_SPEEDUP,
    }
    with open(RESULT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    emit(f"identification engine vs exhaustive "
         f"({DATA_SIZE // 1024} KB wan-lossy transfer)", [
             f"sender:   exhaustive {exhaustive_s:.3f}s "
             f"({len(trace) / exhaustive_s:,.0f} rec/s)  "
             f"engine {engine_s:.3f}s "
             f"({len(trace) / engine_s:,.0f} rec/s)  "
             f"speedup {speedup:.2f}x",
             f"receiver: exhaustive {exhaustive_r_s:.3f}s  "
             f"engine {engine_r_s:.3f}s  "
             f"speedup {receiver_speedup:.2f}x",
             f"engine aborted/pruned {aborted} of "
             f"{len(engine_report.fits)} sender candidates; "
             f"rankings byte-identical",
             f"trace backend: {backend}; engine rec/s by backend: "
             + ", ".join(f"{name} {rate:,}"
                         for name, rate in backend_rates.items()),
             f"result file: {RESULT_FILE}",
         ])
    assert speedup >= MIN_SPEEDUP, (
        f"engine speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate")
