"""A1 — ablation: how much does implementation knowledge buy the
calibration checks?

The paper's core design argument (§4) is that generic analysis fails;
C10 shows it for the sender analyzer.  This ablation shows the same
for a *calibration* check: measurement-duplicate detection (§3.1.2)
must decide whether a header-identical repeat is a filter artifact or
genuine TCP retransmission, and the decision threshold depends on the
implementation (three dup acks for fast retransmit — but a single dup
ack suffices to set off Linux 1.0's flight bursts, §8.5).

We measure duplicate-detection false positives on clean Linux 1.0
traces and detection rate on genuinely duplicated IRIX-style captures,
with and without behavior knowledge.
"""

from repro.capture.errors import DuplicationInjector
from repro.capture.filter import PacketFilter
from repro.core.calibrate.additions import detect_duplicates
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbyte

from benchmarks.conftest import emit


def run_ablation():
    # Clean Linux 1.0 traces: every detection is a false positive.
    false_with = 0
    false_without = 0
    for seed in range(4):
        transfer = traced_transfer(get_behavior("linux-1.0"), "wan-lossy",
                                   data_size=kbyte(50), seed=seed)
        trace = transfer.sender_trace
        false_with += len(detect_duplicates(
            trace, behavior=get_behavior("linux-1.0")))
        false_without += len(detect_duplicates(trace, behavior=None))

    # Genuinely duplicated capture: detections are true positives.
    packet_filter = PacketFilter(vantage="sender",
                                 duplication=DuplicationInjector())
    transfer = traced_transfer(get_behavior("irix-5.2"), "lan",
                               data_size=kbyte(50),
                               sender_filter=packet_filter)
    trace = transfer.sender_trace
    flow = trace.primary_flow()
    outbound = sum(1 for r in trace if r.flow == flow)
    true_with = len(detect_duplicates(trace,
                                      behavior=get_behavior("irix-5.2")))
    true_without = len(detect_duplicates(trace, behavior=None))
    return (false_with, false_without, true_with, true_without,
            outbound // 2)


def test_a1_behavior_knowledge_ablation(once):
    (false_with, false_without, true_with, true_without,
     duplicated) = once(run_ablation)

    emit("A1: behavior knowledge in duplicate detection (ablation)", [
        f"clean Linux 1.0 traces (4 seeds): false positives "
        f"with knowledge = {false_with}, without = {false_without}",
        f"IRIX-style duplicated capture ({duplicated} true pairs): "
        f"detected with knowledge = {true_with}, "
        f"without = {true_without}",
        "(knowing Linux's single-dup-ack flight trigger prevents its "
        "millisecond-scale genuine repeats from reading as filter "
        "artifacts, without costing detection on truly defective "
        "filters)",
    ])

    # Shape: knowledge eliminates (or nearly eliminates) the false
    # positives a generic threshold incurs on Linux 1.0, while true
    # detection stays essentially complete.
    assert false_with <= false_without
    assert false_without > false_with + 2
    assert true_with >= 0.9 * duplicated
    assert true_without >= 0.9 * duplicated
