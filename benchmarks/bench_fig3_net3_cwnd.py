"""F3 — Figure 3: the Net/3 uninitialized-cwnd bug (§8.4).

When the remote TCP's SYN-ack carries no MSS option, Net/3 leaves
cwnd and ssthresh at a huge value, so the first ack liberates the
*entire offered window* at once: the paper's figure shows ~30 packets
blasted into a 16,384-byte window, with losses all over.

We reproduce exactly that pairing (Net/3 sender, a receiver that
offers no MSS option and a 16 KB window), regenerate the sequence
plot, and compare against the same transfer when the receiver *does*
send an MSS option — the bug stays dormant and slow start is normal.
"""

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.capture.filter import PacketFilter, attach_at_host
from repro.netsim.engine import Engine
from repro.netsim.network import build_path
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte

from dataclasses import replace

from benchmarks.conftest import emit

OFFERED_WINDOW = 16384
BURST_WINDOW = 0.005   # packets within 5 ms of the first = one burst


def run_transfer(receiver_offers_mss: bool):
    engine = Engine()
    path = build_path(engine, queue_limit=12)
    packet_filter = PacketFilter(vantage="sender")
    attach_at_host(path.sender, packet_filter)
    receiver = replace(get_behavior("reno"),
                       offers_mss_option=receiver_offers_mss)
    result = run_bulk_transfer(get_behavior("net3"), receiver,
                               data_size=kbyte(50),
                               receiver_buffer=OFFERED_WINDOW, path=path)
    return packet_filter.trace(), result


def first_burst_size(trace):
    flow = trace.primary_flow()
    data = [r for r in trace if r.flow == flow and r.payload > 0]
    return sum(1 for r in data
               if r.timestamp - data[0].timestamp < BURST_WINDOW)


def run_figure3():
    buggy_trace, buggy_result = run_transfer(receiver_offers_mss=False)
    normal_trace, normal_result = run_transfer(receiver_offers_mss=True)
    return buggy_trace, buggy_result, normal_trace, normal_result


def test_fig3_net3_uninitialized_cwnd(once):
    buggy_trace, buggy_result, normal_trace, normal_result = once(run_figure3)

    buggy_burst = first_burst_size(buggy_trace)
    normal_burst = first_burst_size(normal_trace)
    path = buggy_result.path
    burst_drops = (path.forward_access.stats_queue_drops
                   + path.forward_bottleneck.stats_queue_drops)
    plot = sequence_plot(buggy_trace,
                         title="Figure 3: Net/3 uninitialized-cwnd bug")
    emit("Figure 3: Net/3 uninitialized-cwnd bug", [
        render_ascii_plot(plot, width=70, height=18),
        f"SYN-ack without MSS option, {OFFERED_WINDOW}-byte window:",
        f"  first flight: {buggy_burst} packets "
        f"(paper: ~30 packets fill the whole window)",
        f"  network drops during the transfer: {burst_drops} "
        f"(paper: 14 of the first 61 packets lost)",
        f"SYN-ack with MSS option (bug dormant):",
        f"  first flight: {normal_burst} packet(s) — ordinary slow start",
    ])

    # Shape: the bug floods the full window in one burst (~window/MSS
    # packets) and overflows queues; the dormant case starts with one.
    assert buggy_burst >= 25
    assert buggy_burst >= OFFERED_WINDOW // 536 - 5
    assert normal_burst == 1
    assert burst_drops > 0
    assert buggy_result.completed and normal_result.completed
