"""S2 — live serve mode: chunked-tail equivalence, flat table ceiling.

The serve daemon's load-bearing promise is that *live* analysis costs
nothing in fidelity or memory:

* **Equivalence** — a capture appended in 4 KiB chunks while the
  daemon tails it yields per-flow JSONL byte-identical to a one-shot
  ``tcpanaly batch --stream`` over the finished file (modulo the
  capture-wide ``ingest`` block a growing capture cannot have);
* **Flat memory ceiling** — tailing a capture three times as long
  (same arrival cadence, connections retiring as new ones arrive)
  must not move the tailer's tracemalloc peak: the flow table holds
  the *live* connections, never the capture.  One-way transfer traces
  half-close (only the sender FINs), so the retirement path an
  always-on deployment relies on is the table's ``idle_timeout`` —
  the memory kernel sets a finite one, as ``--idle`` would.

CI runs a reduced configuration via ``SERVE_BENCH_CONNECTIONS`` and
``SERVE_BENCH_SCALE``.
"""

import gc
import json
import os
import threading
import time
import tracemalloc

from repro.harness.corpus import generate_interleaved_capture
from repro.pipeline.runner import BatchItem, run_batch
from repro.serve import CaptureTailer, ServeConfig, ServeDaemon
from repro.trace.pcap import write_pcap

from benchmarks.conftest import emit

CONNECTIONS = int(os.environ.get("SERVE_BENCH_CONNECTIONS", "50"))
SCALE = int(os.environ.get("SERVE_BENCH_SCALE", "3"))
IMPLEMENTATIONS = ["reno", "linux-1.0"]
CHUNK = 4096


def write_capture(directory, connections, name):
    capture = generate_interleaved_capture(
        implementations=IMPLEMENTATIONS, connections=connections,
        data_size=10240, distinct_transfers=4, start_interval=0.2)
    path = directory / name
    write_pcap(capture.trace, path)
    return capture, path


def tail_in_chunks(data: bytes, path) -> dict:
    """Feed *data* to a CaptureTailer 4 KiB at a time; account peaks."""
    path.write_bytes(b"")
    gc.collect()
    tracemalloc.start()
    try:
        tailer = CaptureTailer(path, idle_timeout=2.0)
        flows = 0
        peak_live = 0
        for start in range(0, len(data), CHUNK):
            with open(path, "ab") as handle:
                handle.write(data[start:start + CHUNK])
            flows += len(tailer.poll())
            peak_live = max(peak_live, tailer.live_flows)
        flows += len(tailer.finalize())
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {"flows": flows, "peak_live": peak_live, "peak_bytes": peak,
            "records": tailer.records_consumed}


def serve_growing_capture(data: bytes, grow, out) -> tuple[int, list[str]]:
    """Run the daemon over a capture that grows under it; return its
    exit code and the sink's key-sorted JSONL lines."""
    grow.write_bytes(data[:CHUNK])
    daemon = ServeDaemon(ServeConfig(
        out_dir=out, captures=[grow], workers=2, poll_interval=0.05,
        exit_when_idle=True, quiet_seconds=1.0))
    outcome = {}
    thread = threading.Thread(target=lambda: outcome.update(
        rc=daemon.run()), name="bench-serve-daemon")
    thread.start()
    for start in range(CHUNK, len(data), CHUNK):
        with open(grow, "ab") as handle:
            handle.write(data[start:start + CHUNK])
        time.sleep(0.002)
    thread.join(timeout=600)
    assert not thread.is_alive(), "daemon failed to reach idle exit"
    sink = out / "results" / f"{grow.name}.jsonl"
    lines = [json.dumps(json.loads(line), sort_keys=True)
             for line in sink.read_text().splitlines()]
    return outcome["rc"], lines


def run_serve_live(directory):
    base_capture, base_path = write_capture(directory, CONNECTIONS,
                                            "base.pcap")
    long_capture, long_path = write_capture(directory,
                                            CONNECTIONS * SCALE,
                                            "long.pcap")
    base_bytes = base_path.read_bytes()
    long_bytes = long_path.read_bytes()

    base_tail = tail_in_chunks(base_bytes, directory / "tail-base.pcap")
    long_tail = tail_in_chunks(long_bytes, directory / "tail-long.pcap")

    out = directory / "serve-out"
    rc, served = serve_growing_capture(base_bytes,
                                       directory / "grow.pcap", out)

    batch = run_batch([BatchItem(name="grow.pcap",
                                 path=directory / "grow.pcap")],
                      jobs=2, stream=True)
    expected = []
    for result in batch.results:
        payload = dict(result.payload)
        payload.pop("ingest", None)
        expected.append(json.dumps(payload, sort_keys=True))

    return {
        "base_records": len(base_capture.trace),
        "long_records": len(long_capture.trace),
        "base_tail": base_tail,
        "long_tail": long_tail,
        "rc": rc,
        "served": served,
        "expected": expected,
    }


def test_serve_live_equivalence_and_memory(once, tmp_path):
    result = once(run_serve_live, tmp_path)

    kib = 1024.0
    base, long_ = result["base_tail"], result["long_tail"]
    growth = long_["peak_bytes"] / base["peak_bytes"]
    emit(f"Live serve ({CONNECTIONS} connections, {CHUNK}-byte chunks, "
         f"{SCALE}x scale-up)", [
        f"{'capture':>8s} {'records':>8s} {'flows':>6s} "
        f"{'peak live':>9s} {'peak KiB':>9s}",
        f"{'base':>8s} {result['base_records']:8d} {base['flows']:6d} "
        f"{base['peak_live']:9d} {base['peak_bytes'] / kib:9.1f}",
        f"{'long':>8s} {result['long_records']:8d} {long_['flows']:6d} "
        f"{long_['peak_live']:9d} {long_['peak_bytes'] / kib:9.1f}",
        f"tailer peak growth at {SCALE}x connections: {growth:.2f}x",
        f"served {len(result['served'])} flow(s) from the growing "
        f"capture (exit {result['rc']}); batch --stream produced "
        f"{len(result['expected'])}",
    ])

    # Chunked tailing consumed every record and every connection.
    assert base["records"] == result["base_records"]
    assert base["flows"] == CONNECTIONS
    assert long_["flows"] == CONNECTIONS * SCALE

    # Flat ceiling: the flow table tracks *live* connections, so a
    # SCALE x longer capture must not move the tailer's memory peak,
    # and the peak live set must grow sublinearly in the total.
    assert long_["peak_bytes"] < 2 * base["peak_bytes"]
    assert long_["peak_live"] < base["peak_live"] * SCALE

    # The live-vs-batch equivalence gate, byte for byte.
    assert result["rc"] == 0
    assert sorted(result["served"]) == sorted(result["expected"])
