"""S1 — streaming ingest: constant reader memory at corpus scale.

The paper's study captured ~20,000 connections per site; captures of
that size cannot be slurped into memory before analysis.  This
benchmark writes two interleaved multi-connection captures — a base
one and one SCALE x longer — and measures:

* the tracemalloc peak of draining ``iter_pcap`` over each capture,
  asserting the streaming reader's peak does NOT grow with capture
  length (the O(1)-memory contract: large-capture peak < 2x the
  base-capture peak);
* the eager ``read_pcap`` peak on the large capture, asserting it
  dwarfs the streaming peak (an eager read must hold every record);
* demux fan-out: ``demux_pcap`` on the base capture yields exactly
  one flow per synthesized connection (50 in the full configuration);
* streaming vs eager throughput (records/sec) on the large capture.

CI runs a reduced configuration via ``STREAM_BENCH_CONNECTIONS`` and
``STREAM_BENCH_SCALE``.
"""

import gc
import os
import time
import tracemalloc

from repro.harness.corpus import generate_interleaved_capture
from repro.stream import IngestStats, demux_pcap, iter_pcap
from repro.trace.pcap import read_pcap, write_pcap
from repro.trace.wire import AddressMap

from benchmarks.conftest import emit

CONNECTIONS = int(os.environ.get("STREAM_BENCH_CONNECTIONS", "50"))
SCALE = int(os.environ.get("STREAM_BENCH_SCALE", "4"))
IMPLEMENTATIONS = ["reno", "linux-1.0"]


def peak_bytes(function):
    """tracemalloc peak (bytes) of running ``function`` once."""
    gc.collect()
    tracemalloc.start()
    try:
        function()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def write_capture(directory, connections, name):
    capture = generate_interleaved_capture(
        implementations=IMPLEMENTATIONS, connections=connections,
        data_size=10240, distinct_transfers=4, start_interval=0.2)
    path = directory / name
    addresses = AddressMap()
    write_pcap(capture.trace, path, addresses=addresses)
    return capture, path, addresses


def run_ingest(directory):
    base_capture, base_path, base_addresses = write_capture(
        directory, CONNECTIONS, "base.pcap")
    large_capture, large_path, _ = write_capture(
        directory, CONNECTIONS * SCALE, "large.pcap")

    def drain(path):
        for _ in iter_pcap(path):
            pass

    base_peak = peak_bytes(lambda: drain(base_path))
    large_peak = peak_bytes(lambda: drain(large_path))
    eager_peak = peak_bytes(lambda: read_pcap(large_path))

    started = time.perf_counter()
    streamed = sum(1 for _ in iter_pcap(large_path))
    stream_wall = time.perf_counter() - started
    started = time.perf_counter()
    eager = len(read_pcap(large_path))
    eager_wall = time.perf_counter() - started

    stats = IngestStats()
    flows = list(demux_pcap(base_path, addresses=base_addresses,
                            stats=stats))
    return {
        "truth_counts": sorted(f.records for f in base_capture.flows),
        "base_records": len(base_capture.trace),
        "large_records": len(large_capture.trace),
        "base_peak": base_peak,
        "large_peak": large_peak,
        "eager_peak": eager_peak,
        "streamed": streamed,
        "eager": eager,
        "stream_wall": stream_wall,
        "eager_wall": eager_wall,
        "flows": flows,
        "stats": stats,
    }


def test_stream_ingest_memory_and_fanout(once, tmp_path):
    result = once(run_ingest, tmp_path)

    kib = 1024.0
    growth = result["large_peak"] / result["base_peak"]
    emit(f"Streaming ingest ({CONNECTIONS}-connection capture, "
         f"{SCALE}x scale-up)", [
        f"{'reader':>10s} {'records':>8s} {'peak KiB':>9s} "
        f"{'records/s':>10s}",
        f"{'stream':>10s} {result['base_records']:8d} "
        f"{result['base_peak'] / kib:9.1f} {'':>10s}",
        f"{'stream':>10s} {result['large_records']:8d} "
        f"{result['large_peak'] / kib:9.1f} "
        f"{result['streamed'] / result['stream_wall']:10.0f}",
        f"{'eager':>10s} {result['large_records']:8d} "
        f"{result['eager_peak'] / kib:9.1f} "
        f"{result['eager'] / result['eager_wall']:10.0f}",
        f"streaming peak growth at {SCALE}x records: {growth:.2f}x "
        f"(eager: {result['eager_peak'] / result['large_peak']:.1f}x "
        f"the streaming peak)",
        f"demux: {len(result['flows'])} flow(s) from "
        f"{CONNECTIONS} connection(s); "
        f"peak live flows {result['stats'].peak_live_flows}",
    ])

    # O(1) reader memory: a SCALE x longer capture must not move the
    # streaming peak, while the eager read pays for every record.
    assert result["streamed"] == result["eager"] \
        == result["large_records"]
    assert result["large_peak"] < 2 * result["base_peak"]
    assert result["eager_peak"] > 2 * result["large_peak"]

    # Fan-out: one flow per synthesized connection.
    assert len(result["flows"]) == CONNECTIONS
    assert result["stats"].flows_opened == CONNECTIONS
    assert sorted(len(f.records) for f in result["flows"]) \
        == result["truth_counts"]
