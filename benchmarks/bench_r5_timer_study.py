"""R5 — §2/§8.6 (RECONSTRUCTED): the timer studies the paper builds on.

§2 summarizes Comer & Lin's active probing and Dawson et al.'s fault
injection: initial retransmission timeouts, retry backoff, and
connection-abandonment behavior vary wildly across implementations —
and §8.6 confirms their headline number ("Solaris uses an atypically
low initial value of about 300 msec").

We reconstruct their experiment with the fault-injection tools built
here: black-hole the path and read each implementation's timer
schedule straight out of its trace.
"""

from dataclasses import replace

from repro.capture.filter import PacketFilter, attach_at_host
from repro.netsim.engine import Engine
from repro.netsim.link import DeterministicLoss
from repro.netsim.network import build_path
from repro.tcp.catalog import get_behavior
from repro.tcp.connection import run_bulk_transfer
from repro.units import kbyte

from benchmarks.conftest import emit

IMPLEMENTATIONS = ("reno", "sunos-4.1.3", "linux-1.0", "solaris-2.4",
                   "trumpet-2.0b", "windows-95")


def first_data_rexmit_gap(implementation: str) -> tuple[float, list[float]]:
    """Black-hole every data packet; return (first retransmission gap,
    subsequent backoff gaps) for the first data segment."""
    engine = Engine()
    path = build_path(engine, forward_loss=DeterministicLoss(
        predicate=lambda s: "drop" if s.payload > 0 else "deliver"))
    packet_filter = PacketFilter(vantage="sender")
    attach_at_host(path.sender, packet_filter)
    behavior = replace(get_behavior(implementation), max_data_retries=5)
    run_bulk_transfer(behavior, data_size=kbyte(10), path=path,
                      max_duration=600)
    trace = packet_filter.trace()
    flow = trace.primary_flow()
    first_segment = [r.timestamp for r in trace
                     if r.flow == flow and r.payload > 0
                     and r.seq == trace.records[0].seq + 1]
    gaps = [b - a for a, b in zip(first_segment, first_segment[1:])]
    return (gaps[0] if gaps else float("nan")), gaps[1:]


def syn_retry_schedule(implementation: str) -> list[float]:
    """Black-hole everything; return gaps between SYN transmissions."""
    engine = Engine()
    path = build_path(engine, forward_loss=DeterministicLoss(
        predicate=lambda s: "drop"))
    packet_filter = PacketFilter(vantage="sender")
    attach_at_host(path.sender, packet_filter)
    run_bulk_transfer(get_behavior(implementation), data_size=1024,
                      path=path, max_duration=600)
    syns = [r.timestamp for r in packet_filter.trace() if r.is_syn]
    return [b - a for a, b in zip(syns, syns[1:])]


def run_study():
    rows = []
    for implementation in IMPLEMENTATIONS:
        initial_rto, backoffs = first_data_rexmit_gap(implementation)
        syn_gaps = syn_retry_schedule(implementation)
        rows.append({
            "implementation": implementation,
            "initial_rto": initial_rto,
            "backoff": (backoffs[0] / initial_rto) if backoffs else None,
            "syn_gaps": syn_gaps[:3],
        })
    return rows


def test_r5_timer_study(once):
    rows = once(run_study)

    lines = [f"{'implementation':14s} {'first-data RTO':>15s} "
             f"{'backoff':>8s}  SYN retry gaps (s)"]
    for row in rows:
        backoff = f"{row['backoff']:.2f}x" if row["backoff"] else "-"
        gaps = ", ".join(f"{g:.1f}" for g in row["syn_gaps"])
        lines.append(f"{row['implementation']:14s} "
                     f"{row['initial_rto'] * 1e3:13.0f}ms {backoff:>8s}  "
                     f"{gaps}")
    lines.append("(paper §2/§8.6: [CL94] and [DJM97] found initial RTOs "
                 "and retry strategies vary a great deal; Solaris's "
                 "~300 ms stands out)")
    emit("R5: initial RTO and retry backoff (§2/§8.6, reconstructed)",
         lines)

    by_implementation = {r["implementation"]: r for r in rows}
    solaris = by_implementation["solaris-2.4"]
    # §8.6 / [DJM97] / [CL94]: Solaris's initial data RTO ~300 ms,
    # far below everyone else's second-or-more timers.
    assert 0.2 <= solaris["initial_rto"] <= 0.45
    for implementation in ("reno", "sunos-4.1.3", "windows-95"):
        assert by_implementation[implementation]["initial_rto"] >= 1.0
        assert solaris["initial_rto"] \
            < by_implementation[implementation]["initial_rto"] / 3
    # Proper exponential backoff for the BSD stacks; Linux 1.0's
    # "not fully doubling" (§8.5); Trumpet barely backing off.
    assert by_implementation["reno"]["backoff"] >= 1.9
    assert 1.2 <= by_implementation["linux-1.0"]["backoff"] <= 1.8
    assert by_implementation["trumpet-2.0b"]["backoff"] <= 1.5
    # The SYN uses a conservative timer everywhere (§8.6's footnote:
    # even Solaris's broken data timer does not govern the SYN).
    for row in rows:
        assert row["syn_gaps"][0] >= 2.9
