"""R3 — §6.2 (RECONSTRUCTED): inferring a non-default initial ssthresh.

§6.2's third hidden limitation: "if the sending TCP picks an initial
setting for ssthresh that differs from its default ... if a TCP uses
information present in its route cache to guide its choice.  Since
none of the TCPs discussed in this paper do so (an experimental TCP
that tcpanaly also knows about does), we defer discussion to [Pa97b]."

We reconstruct both halves: the experimental route-cache TCP, and the
inference — locate the slow-start → congestion-avoidance transition in
the flight-size trajectory; a transition *before any loss* reveals the
initial ssthresh.  The same inference automatically rediscovers the
paper's §8.5/§8.6 finding that Linux 1.0 and Solaris initialize
ssthresh to a single MSS.
"""

from repro.core.sender.inference import infer_initial_ssthresh
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit

CASES = (
    ("experimental-rc", "wan", 0, 8 * 512),   # route-cache init: 8 segments
    ("solaris-2.4", "wan", 0, 512),           # §8.6: one MSS
    ("linux-1.0", "wan", 0, 512),             # §8.5: one MSS
    ("reno", "wan", 0, None),                 # default: unlimited
    ("tahoe", "wan", 0, None),
    ("reno", "wan-lossy", 1, None),           # transitions only via loss
)


def run_inference():
    rows = []
    for implementation, scenario, seed, truth in CASES:
        transfer = traced_transfer(get_behavior(implementation), scenario,
                                   data_size=102400, seed=seed)
        estimate = infer_initial_ssthresh(transfer.sender_trace)
        rows.append({
            "implementation": implementation, "scenario": scenario,
            "truth": truth, "estimate": estimate,
        })
    return rows


def test_r3_initial_ssthresh_inference(once):
    rows = once(run_inference)

    lines = [f"{'implementation':16s} {'scenario':10s} {'true init':>10s} "
             f"{'inferred':>20s}"]
    for row in rows:
        estimate = row["estimate"]
        if estimate is None:
            inferred = "none (default)"
        elif not estimate.non_default:
            inferred = "loss-induced only"
        else:
            inferred = f"~{estimate.transition_flight} B"
        truth = f"{row['truth']} B" if row["truth"] else "unlimited"
        lines.append(f"{row['implementation']:16s} {row['scenario']:10s} "
                     f"{truth:>10s} {inferred:>20s}")
    lines.append("(the paper deferred this inference to [Pa97b]; the same "
                 "trajectory analysis rediscovers the §8.5/§8.6 one-MSS "
                 "initializations)")
    emit("R3: initial-ssthresh inference (§6.2, reconstructed)", lines)

    by_key = {(r["implementation"], r["scenario"]): r["estimate"]
              for r in rows}
    experimental = by_key[("experimental-rc", "wan")]
    assert experimental is not None and experimental.non_default
    assert abs(experimental.transition_flight - 8 * 512) <= 2 * 512
    for implementation in ("solaris-2.4", "linux-1.0"):
        estimate = by_key[(implementation, "wan")]
        assert estimate is not None and estimate.non_default
        assert estimate.transition_flight <= 3 * 512
    assert by_key[("reno", "wan")] is None
    assert by_key[("tahoe", "wan")] is None
    lossy = by_key[("reno", "wan-lossy")]
    assert lossy is None or not lossy.non_default
