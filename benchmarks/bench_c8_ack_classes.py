"""C8 — §9.1: acknowledgement classification across the catalog.

tcpanaly classifies acks as **delayed** (< 2 full-sized packets),
**normal** (exactly 2), or **stretch** (> 2).  The paper's §9.1
findings, regenerated here as one table:

* BSD-derived receivers: mostly normal acks; delayed-ack generation
  delays spread across 0–200 ms (the free-running heartbeat);
* Linux 1.0: acks every packet within ~1 ms — all delayed acks by
  definition, never normal;
* Solaris: delayed acks generated at its 50 ms timer;
* stretch acks rare for everyone — except the RECONSTRUCTED
  stretch-ack offender (osf1-1.3a; the §9.1 stretch-ack discussion
  falls in the truncated region of the provided text), which acks
  only every third segment.
"""

from repro.analysis.stats import ack_class_table
from repro.core.receiver.analyzer import analyze_receiver
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit

IMPLEMENTATIONS = ("reno", "sunos-4.1.3", "linux-1.0", "solaris-2.4",
                   "windows-95", "trumpet-2.0b", "osf1-1.3a")


def run_classification():
    analyses = []
    for implementation in IMPLEMENTATIONS:
        for seed in range(3):
            transfer = traced_transfer(get_behavior(implementation), "wan",
                                       data_size=51200, seed=seed)
            analyses.append(analyze_receiver(
                transfer.receiver_trace, get_behavior(implementation)))
    return ack_class_table(analyses)


def test_c8_ack_classification(once):
    table = once(run_classification)

    lines = [f"{'implementation':16s} {'acks':>6s} {'delayed':>8s} "
             f"{'normal':>7s} {'stretch':>8s} {'delay min/mean/max (ms)':>24s}"]
    for implementation in IMPLEMENTATIONS:
        row = table[implementation]
        delay_text = ""
        if "delayed_min_ms" in row:
            delay_text = (f"{row['delayed_min_ms']:6.1f}/"
                          f"{row['delayed_mean_ms']:6.1f}/"
                          f"{row['delayed_max_ms']:6.1f}")
        lines.append(f"{implementation:16s} {int(row['acks']):6d} "
                     f"{row['delayed_fraction']:8.2f} "
                     f"{row['normal_fraction']:7.2f} "
                     f"{row['stretch_fraction']:8.2f} {delay_text:>24s}")
    emit("C8: ack classification (§9.1)", lines)

    # Shape: BSD-derived receivers ack mostly in pairs; Linux acks
    # every packet (all delayed, sub-millisecond); Solaris delayed
    # acks sit at its 50 ms timer; stretch acks are rare everywhere.
    assert table["reno"]["normal_fraction"] > 0.7
    assert table["sunos-4.1.3"]["normal_fraction"] > 0.7
    assert table["linux-1.0"]["delayed_fraction"] == 1.0
    assert table["linux-1.0"]["delayed_max_ms"] < 2.0
    assert 45 <= table["solaris-2.4"]["delayed_min_ms"] <= 60
    for implementation in IMPLEMENTATIONS:
        if implementation == "osf1-1.3a":
            continue   # the reconstructed stretch-ack offender
        assert table[implementation]["stretch_fraction"] < 0.05
    assert table["osf1-1.3a"]["stretch_fraction"] > 0.5
    # BSD heartbeat delays range widely below 200 ms (uniform-ish).
    assert table["reno"]["delayed_max_ms"] <= 210
    assert table["reno"]["delayed_max_ms"] \
        > table["reno"]["delayed_min_ms"] + 20
