"""C6 — §8.6: Solaris load inflation vs. path RTT.

"Solaris 2.3/2.4 TCP can effectively increase the overall load it
presents to any high-latency Internet path by a factor of two or even
more."  And on the 2.6 s-RTT worst case, the paper observed the first
data packet retransmitted 5 times, the second 6, the third 4 — all
needless.

We sweep RTT from LAN scale to the satellite worst case, measure the
total-packets ratio Solaris/Reno on loss-free paths (so every
retransmission is provably unnecessary), and count per-packet
transmissions at 2.6 s.  The crossover where the pathology ignites
should sit where RTT crosses the ~300 ms initial RTO.
"""

from collections import Counter

from repro.harness.scenarios import Scenario, traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import kbit, kbyte

from benchmarks.conftest import emit

RTTS = (0.05, 0.15, 0.30, 0.68, 1.4, 2.6)


def run_sweep():
    rows = []
    for rtt in RTTS:
        scenario = Scenario(name=f"rtt-{rtt}", bottleneck_bandwidth=kbit(512),
                            bottleneck_delay=rtt / 2 - 0.0005)
        solaris = traced_transfer(get_behavior("solaris-2.4"), scenario,
                                  data_size=kbyte(50))
        reno = traced_transfer(get_behavior("reno"), scenario,
                               data_size=kbyte(50))
        ratio = (solaris.result.sender.stats_data_packets
                 / reno.result.sender.stats_data_packets)
        rows.append({"rtt": rtt, "ratio": ratio,
                     "solaris_rexmits":
                         solaris.result.sender.stats_retransmissions,
                     "transfer": solaris})
    return rows


def per_packet_transmissions(trace, first_n=4):
    """How many times each of the first data segments was transmitted."""
    flow = trace.primary_flow()
    counts = Counter(r.seq for r in trace
                     if r.flow == flow and r.payload > 0)
    starts = sorted(counts, key=lambda s: (s - 1) % 2**32)[:first_n]
    return [counts[s] for s in starts]


def test_c6_solaris_load_inflation(once):
    rows = once(run_sweep)

    lines = [f"{'RTT (s)':>8s} {'load ratio':>11s} {'rexmits':>8s}   "
             f"(loss-free path: every retransmission unnecessary)"]
    for row in rows:
        lines.append(f"{row['rtt']:8.2f} {row['ratio']:11.2f} "
                     f"{row['solaris_rexmits']:8d}")
    worst = per_packet_transmissions(rows[-1]["transfer"].sender_trace)
    lines.append(f"at RTT 2.6 s, transmissions of the first data packets: "
                 f"{worst} (paper: 5, 6, 4, 4 — including the original)")
    emit("C6: Solaris load inflation vs RTT (§8.6)", lines)

    by_rtt = {row["rtt"]: row for row in rows}
    # Shape: no inflation below the ~300 ms initial RTO; roughly 2x at
    # trans-Atlantic latencies and beyond ("a factor of two or even
    # more"); worst-case packets re-sent several times each.
    assert by_rtt[0.05]["ratio"] < 1.1
    assert by_rtt[0.15]["ratio"] < 1.2
    assert by_rtt[0.68]["ratio"] >= 1.3
    assert by_rtt[2.6]["ratio"] >= 1.5
    assert max(by_rtt[r]["ratio"] for r in (1.4, 2.6)) >= 1.7
    assert all(count >= 3 for count in worst[:2])
