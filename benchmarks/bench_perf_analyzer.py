"""Tool performance: analysis throughput on large traces.

The paper hoped tcpanaly might one day "watch an Internet link in
real-time and detect misbehaving TCP sessions" (§4) — abandoned for
other reasons, but throughput still matters for batch analysis of a
20,000-trace corpus.  These benchmarks measure the three analysis
kernels on a ~1 MB transfer (thousands of packets), with proper
multi-round statistics (the one place wall-clock timing, not shape,
is the result).
"""

import pytest

from repro.core.calibrate import calibrate_trace
from repro.core.receiver.analyzer import analyze_receiver
from repro.core.sender.analyzer import analyze_sender
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def big_transfer():
    return traced_transfer(get_behavior("reno"), "wan-lossy",
                           data_size=1_048_576, seed=2)


def test_perf_sender_analysis(benchmark, big_transfer):
    trace = big_transfer.sender_trace
    analysis = benchmark(analyze_sender, trace, get_behavior("reno"))
    assert analysis.violation_count == 0
    rate = len(trace) / benchmark.stats.stats.mean
    emit("tool performance: sender analysis", [
        f"trace: {len(trace)} records; "
        f"throughput ≈ {rate:,.0f} records/sec",
    ])
    assert rate > 5_000   # comfortably faster than a 1995 link's packet rate


def test_perf_receiver_analysis(benchmark, big_transfer):
    trace = big_transfer.receiver_trace
    analysis = benchmark(analyze_receiver, trace, get_behavior("reno"))
    assert analysis.gratuitous == []
    rate = len(trace) / benchmark.stats.stats.mean
    assert rate > 5_000


def test_perf_calibration(benchmark, big_transfer):
    trace = big_transfer.sender_trace
    report = benchmark(calibrate_trace, trace, get_behavior("reno"))
    assert report.clean


def test_perf_identification(benchmark, big_transfer):
    """Full-catalog identification through the engine path.

    The engine replays every catalog entry (sharing pass one, pruning,
    aborting hopeless replays), so its per-record cost is a few
    candidates' worth of replay, not the whole catalog's.
    """
    from repro.core.engine import IdentificationEngine
    trace = big_transfer.sender_trace
    engine = IdentificationEngine()
    report = benchmark(engine.identify_sender, trace)
    assert report.best is not None and report.best.category == "close"
    rate = len(trace) / benchmark.stats.stats.mean
    emit("tool performance: full-catalog identification (engine)", [
        f"trace: {len(trace)} records x {len(engine.candidates)} "
        f"candidates; throughput ≈ {rate:,.0f} records/sec",
    ])
    assert rate > 2_000   # whole-catalog identification, not one replay
