"""C9 — §7: detecting corrupted arrivals.

Receiving kernels checksum-verify and silently discard damaged
packets *after* the filter records them.  With whole-packet captures
tcpanaly verifies checksums directly; with the common header-only
captures it must *infer* a discard: data the trace shows arriving that
is never acknowledged before the same data arrives again.

We run transfers over a corrupting path, and score the inference
(header-only) against checksum ground truth (full capture), across
implementations and corruption rates.
"""

from repro.core.receiver.analyzer import analyze_receiver
from repro.harness.scenarios import Scenario, traced_transfer
from repro.tcp.catalog import get_behavior
from repro.units import mbit

from benchmarks.conftest import emit


def run_study():
    rows = []
    for corrupt_rate in (0.0, 0.01, 0.03):
        for implementation in ("reno", "solaris-2.4", "linux-1.0"):
            scenario = Scenario(
                f"corrupt-{corrupt_rate}", bottleneck_bandwidth=mbit(1.0),
                bottleneck_delay=0.035, corrupt_rate=corrupt_rate)
            transfer = traced_transfer(get_behavior(implementation),
                                       scenario, data_size=51200, seed=1)
            trace = transfer.receiver_trace
            truth = {r.packet_id for r in trace if r.corrupted}
            verified = analyze_receiver(trace, get_behavior(implementation))
            inferred = analyze_receiver(trace, get_behavior(implementation),
                                        headers_only=True)
            inferred_ids = {r.packet_id for r in inferred.inferred_corrupt}
            rows.append({
                "implementation": implementation,
                "rate": corrupt_rate,
                "truth": len(truth),
                "verified": len(verified.verified_corrupt),
                "inferred": len(inferred_ids),
                "missed": len(truth - inferred_ids),
                "false": len(inferred_ids - truth),
            })
    return rows


def test_c9_corruption_inference(once):
    rows = once(run_study)

    lines = [f"{'implementation':16s} {'rate':>6s} {'truth':>6s} "
             f"{'verified':>9s} {'inferred':>9s} {'missed':>7s} "
             f"{'false':>6s}"]
    for row in rows:
        lines.append(f"{row['implementation']:16s} {row['rate']:6.2f} "
                     f"{row['truth']:6d} {row['verified']:9d} "
                     f"{row['inferred']:9d} {row['missed']:7d} "
                     f"{row['false']:6d}")
    lines.append("(paper: checksums verify when contents were captured; "
                 "otherwise corruption is inferred from unacknowledged "
                 "arrivals that get retransmitted)")
    emit("C9: corrupted-arrival detection (§7)", lines)

    for row in rows:
        # Checksum verification is exact for everyone.
        assert row["verified"] == row["truth"]
        if row["rate"] == 0.0:
            assert row["inferred"] == 0
        if row["implementation"] == "linux-1.0":
            # Linux 1.0's whole-flight retransmission storms blur the
            # "unacknowledged then re-sent" signature: the inference
            # stays useful (finds at least half) but loses precision —
            # the pathological sender degrades the measurement too.
            assert row["inferred"] >= row["truth"] - row["missed"] >= \
                row["truth"] // 2
        else:
            # For sanely-retransmitting stacks the inference is exact
            # up to a couple of ambiguous extras.
            assert row["missed"] == 0
            assert row["false"] <= max(2, row["truth"] // 2)
