"""R1 — §10 (RECONSTRUCTED): the independently-written implementations.

The provided paper text truncates before §10's details, but the
earlier sections state its findings: the most problematic TCPs were
all independently written; Trumpet/Winsock "exhibits severe
deficiencies"; the Linux 1.0 retransmission disaster "has been fixed
in later Linux releases".  We regenerate that comparison: needless
retransmission load of each independent stack vs. the BSD-derived
baseline, on identical paths.
"""

from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit

INDEPENDENT = ("linux-1.0", "solaris-2.4", "trumpet-2.0b", "windows-95",
               "linux-2.0.30")


def run_comparison():
    rows = []
    for implementation in ("reno",) + INDEPENDENT:
        lossy = traced_transfer(get_behavior(implementation), "wan-lossy",
                                data_size=51200, seed=3)
        high_rtt = traced_transfer(get_behavior(implementation),
                                   "transatlantic", data_size=51200)
        rows.append({
            "implementation": implementation,
            "lossy_rexmits": lossy.result.sender.stats_retransmissions,
            "lossy_packets": lossy.result.sender.stats_data_packets,
            "rtt_rexmits": high_rtt.result.sender.stats_retransmissions,
            "completed": lossy.result.completed and high_rtt.result.completed,
        })
    return rows


def test_r1_independent_implementations(once):
    rows = once(run_comparison)

    lines = [f"{'implementation':16s} {'lossy rexmit':>13s} "
             f"{'of packets':>11s} {'high-RTT rexmit':>16s}"]
    for row in rows:
        lines.append(f"{row['implementation']:16s} "
                     f"{row['lossy_rexmits']:13d} "
                     f"{row['lossy_packets']:11d} {row['rtt_rexmits']:16d}")
    lines.append("(paper: independently-written TCPs tend to have much "
                 "more significant congestion and performance problems "
                 "than BSD-derived ones; Linux 2.0 fixed the 1.0 "
                 "retransmission disaster)")
    emit("R1: independent implementations (§10, reconstructed)", lines)

    by_implementation = {row["implementation"]: row for row in rows}
    reno = by_implementation["reno"]
    # Shape: every transfer completes; Linux 1.0 and Trumpet dwarf the
    # BSD baseline under loss; Solaris dwarfs it at high RTT;
    # Linux 2.0's fix brings it back to earth; Windows is Reno-like.
    assert all(row["completed"] for row in rows)
    assert by_implementation["linux-1.0"]["lossy_rexmits"] \
        >= 5 * max(reno["lossy_rexmits"], 1)
    assert by_implementation["trumpet-2.0b"]["lossy_rexmits"] \
        >= 3 * max(reno["lossy_rexmits"], 1)
    assert by_implementation["solaris-2.4"]["rtt_rexmits"] \
        >= 30 > reno["rtt_rexmits"]
    assert by_implementation["linux-2.0.30"]["lossy_rexmits"] \
        <= by_implementation["linux-1.0"]["lossy_rexmits"] // 3
    assert by_implementation["windows-95"]["lossy_rexmits"] \
        <= 3 * max(reno["lossy_rexmits"], 1)
