"""F4 — Figure 4: broken Linux 1.0 retransmission behavior (§8.5).

The paper's figure shows Linux 1.0 re-sending *every packet in
flight* whenever it decides to retransmit — spurred by a single dup
ack or by its premature timer — clogging the path with needless
copies.  The quoted connection sent 317 packets, 117 of them
retransmissions, with 20% of packets dropped: "if Linux 1.0 were
ubiquitous, its retransmission behavior would bring the Internet to
its knees."

We run Linux 1.0 and generic Reno over the identical lossy path,
regenerate the sequence plot, and check the shape: Linux's
retransmission count is many times Reno's, and whole flights appear
back-to-back in the trace.
"""

from repro.analysis.seqplot import render_ascii_plot, sequence_plot
from repro.core.sender.analyzer import analyze_sender
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit


def run_figure4():
    linux = traced_transfer(get_behavior("linux-1.0"), "wan-lossy",
                            data_size=51200, seed=3)
    reno = traced_transfer(get_behavior("reno"), "wan-lossy",
                           data_size=51200, seed=3)
    analysis = analyze_sender(linux.sender_trace, get_behavior("linux-1.0"))
    return linux, reno, analysis


def test_fig4_linux10_broken_retransmission(once):
    linux, reno, analysis = once(run_figure4)

    linux_sender = linux.result.sender
    reno_sender = reno.result.sender
    plot = sequence_plot(linux.sender_trace,
                         title="Figure 4: broken Linux 1.0 retransmission")
    counts = analysis.counts_by_kind()
    drops = linux.result.path.forward_bottleneck
    drop_fraction = ((drops.stats_loss_drops + drops.stats_queue_drops)
                     / max(drops.stats_offered, 1))
    emit("Figure 4: broken Linux 1.0 retransmission behavior", [
        render_ascii_plot(plot, width=70, height=18),
        f"Linux 1.0: {linux_sender.stats_data_packets} data packets, "
        f"{linux_sender.stats_retransmissions} retransmissions "
        f"(paper: 317 packets, 117 retransmissions)",
        f"  packets dropped by the network: {drop_fraction:.0%} "
        f"(paper: 20%)",
        f"  whole-flight bursts: {counts.get('flight_start', 0)} starts, "
        f"{counts.get('flight', 0)} continuation packets",
        f"Reno on the identical path: {reno_sender.stats_data_packets} "
        f"packets, {reno_sender.stats_retransmissions} retransmissions",
        f"load ratio Linux/Reno: "
        f"{linux_sender.stats_data_packets / reno_sender.stats_data_packets:.1f}x",
    ])

    # Shape: Linux retransmits in whole flights and sends several times
    # more retransmissions than Reno under identical loss; a sizable
    # fraction of its packets are needless copies.
    assert counts.get("flight", 0) > 20
    assert linux_sender.stats_retransmissions \
        >= 5 * max(reno_sender.stats_retransmissions, 1)
    rexmit_fraction = (linux_sender.stats_retransmissions
                       / linux_sender.stats_data_packets)
    assert 0.2 <= rexmit_fraction <= 0.8     # paper: 117/317 = 37%
    assert analysis.violation_count == 0
