"""C10 — §4: why one-pass generic analysis had to be abandoned.

The paper's original design — a single pass recognizing generic TCP
actions — foundered on (a) vantage-point ambiguities, (b) behaviors
that fit no generic action (Linux flights, Solaris premature
retransmissions), and (c) properties only apparent from a whole
connection (the sender window, §6.2).

This ablation compares three analyzer designs on the same traces:

* **eager one-pass** — feed every recorded ack before each send,
  classify by generic actions only (no implementation knowledge);
* **lazy generic** — tcpanaly's lazy liberation feeding, but a
  generic-Reno model for every trace;
* **full tcpanaly** — lazy feeding plus the per-implementation model.

The failure counts reproduce the paper's design argument: each
ingredient removes a class of spurious findings.
"""

from repro.core.sender.analyzer import (
    SenderAnalysis,
    _Replay,
    analyze_sender,
    extract_pass_one,
)
from repro.harness.scenarios import traced_transfer
from repro.tcp.catalog import get_behavior

from benchmarks.conftest import emit

CASES = (
    ("reno", "wan-lossy"),
    ("tahoe", "wan-lossy"),
    ("linux-1.0", "wan-lossy"),
    ("solaris-2.4", "transatlantic"),
)


def count_failures(trace, behavior, eager: bool) -> int:
    """Unexplainable data packets under the given feeding discipline."""
    pass_one = extract_pass_one(trace)
    state = _Replay(pass_one, behavior,
                    SenderAnalysis(behavior.label(), behavior,
                                   pass_one.facts))
    failures = 0
    for record in state.data:
        if eager:
            while state.acks_available_by(record.timestamp):
                state.feed_ack()
            classification = state.try_explain(record)
        else:
            classification = None
            while classification is None:
                classification = state.try_explain(record)
                if classification is None:
                    if state.acks_available_by(record.timestamp):
                        state.feed_ack()
                    else:
                        break
        if classification is None:
            failures += 1
            state.model.force_observe(record)
        else:
            state.apply(classification)
    return failures


def run_ablation():
    rows = []
    for implementation, scenario in CASES:
        transfer = traced_transfer(get_behavior(implementation), scenario,
                                   data_size=51200, seed=3)
        trace = transfer.sender_trace
        generic = get_behavior("reno")
        specific = get_behavior(implementation)
        rows.append({
            "case": f"{implementation}/{scenario}",
            "eager_generic": count_failures(trace, generic, eager=True),
            "lazy_generic": count_failures(trace, generic, eager=False),
            "full": analyze_sender(trace, specific).violation_count,
        })
    return rows


def test_c10_design_ablation(once):
    rows = once(run_ablation)

    lines = [f"{'trace':28s} {'eager+generic':>14s} {'lazy+generic':>13s} "
             f"{'full tcpanaly':>14s}"]
    for row in rows:
        lines.append(f"{row['case']:28s} {row['eager_generic']:14d} "
                     f"{row['lazy_generic']:13d} {row['full']:14d}")
    lines.append("(paper §4: one-pass analysis foundered on vantage "
                 "ambiguity; generic actions foundered on Linux/Solaris "
                 "behavior — hence two passes + per-implementation "
                 "knowledge)")
    emit("C10: analyzer design ablation (§4)", lines)

    by_case = {row["case"]: row for row in rows}
    # Shape: the full analyzer explains everything; the generic model
    # fails badly on independently-written stacks regardless of
    # feeding; eager feeding is never better than lazy.
    for row in rows:
        assert row["full"] == 0
        assert row["eager_generic"] >= row["lazy_generic"]
    assert by_case["linux-1.0/wan-lossy"]["lazy_generic"] > 10
    assert by_case["solaris-2.4/transatlantic"]["lazy_generic"] > 10
    assert by_case["reno/wan-lossy"]["lazy_generic"] == 0
